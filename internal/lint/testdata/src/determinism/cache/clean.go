// Package cache is a determinism golden-file fixture. Its directory's
// final path segment matches the real decoded-block cache package, so
// the reproducibility rules apply to it the same way.
package cache

import (
	"sort"
	"time"
)

// entry mirrors the real cache's resident-entry bookkeeping.
type entry struct {
	version uint64
	size    int64
}

// store is a miniature shard: keyed entries plus an injected clock.
type store struct {
	byID  map[string]entry
	clock func() time.Time
}

// injectedStamp reads time through the configured clock, never the wall
// clock directly: the sanctioned idiom for stale bookkeeping.
func (s *store) injectedStamp() time.Time {
	return s.clock()
}

// sortedBytes iterates entries in sorted key order before accumulating,
// so the float total is bit-identical across runs.
func (s *store) sortedBytes() float64 {
	keys := make([]string, 0, len(s.byID))
	for k := range s.byID {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += float64(s.byID[k].size)
	}
	return total
}

// count is order-insensitive: integer addition commutes exactly.
func (s *store) count() int {
	n := 0
	for range s.byID {
		n++
	}
	return n
}
