package cache

import (
	"math/rand"
	"time"
)

// wallClockAge bypasses the injected clock for stale bookkeeping.
func wallClockAge(since time.Time) time.Duration {
	return time.Since(since) // want "time.Since in a deterministic package"
}

// randomVictim picks an eviction victim from the process-wide source,
// making eviction order irreproducible across runs.
func randomVictim(ids []string) string {
	return ids[rand.Intn(len(ids))] // want "global rand.Intn uses the process-wide source"
}

// residentVersions leaks map iteration order into the returned slice.
func residentVersions(byID map[string]entry) []uint64 {
	var out []uint64
	for _, e := range byID { // want "map iteration order reaches output"
		out = append(out, e.version)
	}
	return out
}
