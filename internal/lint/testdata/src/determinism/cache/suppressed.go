package cache

import "time"

// defaultClock is suppressed: it only seeds the injected-clock default
// for production callers and never runs under the simulator, which
// always supplies its own virtual clock.
//
//lint:ignore determinism fixture: production default, simulator injects its own clock
func defaultClock() time.Time {
	return time.Now()
}
