package metadata

import (
	"math/rand"
	"time"
)

// stampRecord puts the wall clock into a durable record, so replaying
// the same op log writes different bytes every run.
func stampRecord() int64 {
	return time.Now().UnixNano() // want "time.Now in a deterministic package"
}

// jitterCompaction draws the compaction delay from the process-wide
// source, making segment rotation points irreproducible.
func jitterCompaction(base time.Duration) time.Duration {
	return base + time.Duration(rand.Int63n(int64(base))) // want "global rand.Int63n uses the process-wide source"
}

// encodeUnsorted walks the watermark map directly into the snapshot
// buffer: two runs of the same catalog produce different snapshot bytes.
func encodeUnsorted(w watermarks, emit func(string)) {
	for k := range w { // want "map iteration order reaches output"
		emit(k)
	}
}
