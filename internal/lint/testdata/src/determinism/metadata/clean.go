// Package metadata is a determinism golden-file fixture. Its directory's
// final path segment matches the real metadata catalog, so the
// reproducibility rules apply the same way: snapshot and WAL encoding
// must be byte-identical for a given logical state, which means no map
// iteration order can reach the encoded output.
package metadata

import "sort"

// watermarks mirrors a partition's retired-version table.
type watermarks map[string]uint64

// encodeSorted is the sanctioned idiom: collect keys, sort, then walk
// the slice — snapshot bytes come out identical on every run.
func encodeSorted(w watermarks) []string {
	keys := make([]string, 0, len(w))
	for k := range w {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k)
	}
	return out
}

// merge folds one partition's table into a global view: map writes are
// order-insensitive, so ranging directly is fine.
func merge(dst, src watermarks) {
	for k, v := range src {
		if v > dst[k] {
			dst[k] = v
		}
	}
}
