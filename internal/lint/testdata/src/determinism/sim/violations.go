// Package sim is a determinism golden-file fixture. Its directory's
// final path segment matches the real simulator package, so the
// reproducibility rules apply to it the same way.
package sim

import (
	"math/rand"
	"time"
)

// stamp reads the wall clock.
func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in a deterministic package"
}

// draw consumes the process-wide rand source.
func draw() int {
	return rand.Intn(10) // want "global rand.Intn uses the process-wide source"
}

// flatten leaks map iteration order into a slice.
func flatten(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m { // want "map iteration order reaches output"
		out = append(out, v)
	}
	return out
}

// total accumulates floats in map order: the sum's bits depend on the
// iteration order.
func total(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want "map iteration order reaches output"
		sum += v
	}
	return sum
}
