package sim

import (
	"math/rand"
	"sort"
)

// seeded draws from an injected generator.
func seeded(rng *rand.Rand) int {
	return rng.Intn(10)
}

// construct builds a seeded generator: the constructors are allowed.
func construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// sortedSum is the sanctioned idiom: collect keys, sort, iterate.
func sortedSum(m map[int]float64) float64 {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// count is order-insensitive: integer addition commutes exactly.
func count(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}
