package sim

import "time"

// wallStart is suppressed: the value feeds an operator-facing log line
// and never reaches simulation state.
//
//lint:ignore determinism fixture: wall time never reaches simulation state
func wallStart() int64 {
	return time.Now().UnixNano()
}
