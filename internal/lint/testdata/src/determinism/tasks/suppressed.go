package tasks

import "time"

// defaultClock is suppressed: it only seeds Config.Clock's default for
// production daemons and never runs under the simulator, which always
// injects the engine's virtual clock.
//
//lint:ignore determinism fixture: production default, simulator injects its own clock
func defaultClock() time.Time {
	return time.Now()
}
