package tasks

import (
	"math/rand"
	"time"
)

// taskAge bypasses the injected clock for retry backoff, so a replay
// under virtual time computes different ages.
func taskAge(enqueued time.Time) time.Duration {
	return time.Since(enqueued) // want "time.Since in a deterministic package"
}

// jitteredDelay draws from the process-wide source, making the pass
// cadence irreproducible across runs.
func jitteredDelay(base time.Duration) time.Duration {
	return base + time.Duration(rand.Int63n(int64(base))) // want "global rand.Int63n uses the process-wide source"
}

// pendingIDs leaks map iteration order into the batch the scheduler
// would start, so equal-priority tasks race differently every run.
func pendingIDs(pending map[string]record) []string {
	var out []string
	for _, r := range pending { // want "map iteration order reaches output"
		out = append(out, r.id)
	}
	return out
}
