// Package tasks is a determinism golden-file fixture. Its directory's
// final path segment matches the real background task scheduler, so the
// reproducibility rules apply to it the same way: the scheduler must
// replay byte-identically under the simulator's virtual clock.
package tasks

import (
	"sort"
	"time"
)

// record mirrors the scheduler's durable task row.
type record struct {
	id       string
	priority int
	created  int64
}

// queue is a miniature scheduler: pending rows plus an injected clock.
type queue struct {
	pending map[string]record
	clock   func() time.Time
}

// stamp reads time through the configured clock, never the wall clock
// directly: the sanctioned idiom for task timestamps.
func (q *queue) stamp() int64 {
	return q.clock().UnixNano()
}

// admissionOrder iterates rows in sorted key order before ranking, so
// ties between equal-priority tasks break identically across runs.
func (q *queue) admissionOrder() []record {
	keys := make([]string, 0, len(q.pending))
	for k := range q.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]record, 0, len(keys))
	for _, k := range keys {
		out = append(out, q.pending[k])
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.priority != b.priority {
			return a.priority > b.priority
		}
		if a.created != b.created {
			return a.created < b.created
		}
		return a.id < b.id
	})
	return out
}

// depth is order-insensitive: integer addition commutes exactly.
func (q *queue) depth() int {
	n := 0
	for range q.pending {
		n++
	}
	return n
}
