// Package metricname is a metricname golden-file fixture: names passed
// to the real obs registry constructors.
package metricname

import "ecstore/internal/obs"

// register exercises the naming rules.
func register(reg *obs.Registry) {
	reg.Counter("fixture_requests_total", "fixture counter")
	reg.Counter("Bad-Name", "fixture counter")                // want "not lowercase snake_case"
	reg.Gauge("fixture_requests_total", "fixture duplicate")  // want "already registered"
	reg.Histogram("_leading_underscore", "fixture histogram") // want "not lowercase snake_case"
	//lint:ignore metricname fixture: legacy dashboard name kept for continuity
	reg.Histogram("Legacy_Latency", "fixture suppressed")
	reg.HistogramVec("fixture_latency_seconds", "op", "fixture clean")
}

// registerCache mirrors the decoded-block cache's metric family: every
// real cache_* instrument name must satisfy the naming rules.
func registerCache(reg *obs.Registry) {
	reg.Counter("cache_hits_total", "fixture cache counter")
	reg.Counter("cache_misses_total", "fixture cache counter")
	reg.Counter("cache_stale_serves_total", "fixture cache counter")
	reg.Counter("cache_singleflight_dedup_total", "fixture cache counter")
	reg.Gauge("cache_bytes", "fixture cache gauge")
	reg.Counter("cache-hits", "fixture cache counter")  // want "not lowercase snake_case"
	reg.Gauge("cache_bytes", "fixture cache duplicate") // want "already registered"
}
