// Package metricname is a metricname golden-file fixture: names passed
// to the real obs registry constructors.
package metricname

import "ecstore/internal/obs"

// register exercises the naming rules.
func register(reg *obs.Registry) {
	reg.Counter("fixture_requests_total", "fixture counter")
	reg.Counter("Bad-Name", "fixture counter")                // want "not lowercase snake_case"
	reg.Gauge("fixture_requests_total", "fixture duplicate")  // want "already registered"
	reg.Histogram("_leading_underscore", "fixture histogram") // want "not lowercase snake_case"
	//lint:ignore metricname fixture: legacy dashboard name kept for continuity
	reg.Histogram("Legacy_Latency", "fixture suppressed")
	reg.HistogramVec("fixture_latency_seconds", "op", "fixture clean")
}
