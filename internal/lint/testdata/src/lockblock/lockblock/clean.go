package lockblock

// sendAfterUnlock releases the lock before touching the channel.
func (q *queue) sendAfterUnlock() {
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
	q.ch <- 1
}

// deferred covers every return path with one defer.
func (q *queue) deferred(skip bool) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if skip {
		return 0
	}
	return q.n
}

// deferredClosure releases through a deferred closure.
func (q *queue) deferredClosure() {
	q.mu.Lock()
	defer func() { q.mu.Unlock() }()
	q.n++
}

// bump never blocks, so calling it inside the critical section is
// fine: the interprocedural check summarizes its body, not its name.
func (q *queue) bump() {
	q.n++
}

func (q *queue) callsHelper() {
	q.mu.Lock()
	q.bump()
	q.mu.Unlock()
}

// sendUnderLockSuppressed documents why this send cannot block.
func (q *queue) sendUnderLockSuppressed() {
	q.mu.Lock()
	//lint:ignore lockblock fixture: channel is buffered and drained by the owner
	q.ch <- 1
	q.mu.Unlock()
}
