// Package lockblock is a lockblock golden-file fixture: operations that
// can block indefinitely inside a sync.Mutex critical section.
package lockblock

import (
	"sync"
	"time"
)

type queue struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// sendUnderLock holds mu across a channel send.
func (q *queue) sendUnderLock() {
	q.mu.Lock()
	q.ch <- 1 // want "channel send while q.mu is held"
	q.mu.Unlock()
}

// sleepUnderLock naps inside the critical section.
func (q *queue) sleepUnderLock() {
	q.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while q.mu is held"
	q.mu.Unlock()
}

// recvUnderLock blocks on a receive inside the critical section.
func (q *queue) recvUnderLock() int {
	q.mu.Lock()
	v := <-q.ch // want "channel receive while q.mu is held"
	q.mu.Unlock()
	return v
}

// earlyReturn leaves the critical section locked on one path.
func (q *queue) earlyReturn(skip bool) int {
	q.mu.Lock()
	if skip {
		return 0 // want "return while q.mu is held"
	}
	q.mu.Unlock()
	return q.n
}

// neverReleased forgets the Unlock entirely.
func (q *queue) neverReleased() {
	q.mu.Lock() // want "never released on the fall-through path"
	q.n++
}

// emit performs a bare channel send; callers must not hold locks.
func (q *queue) emit(v int) {
	q.ch <- v
}

// callsBlockingHelper holds mu across a static call whose body blocks:
// the check follows the call graph one level deep.
func (q *queue) callsBlockingHelper() {
	q.mu.Lock()
	q.emit(1) // want "call to lockblock.(queue).emit, which blocks (channel send"
	q.mu.Unlock()
}
