// Package ignore exercises the directive parser: a //lint:ignore with no
// reason is itself a finding.
package ignore

//lint:ignore ctxfirst
var _ = 0
