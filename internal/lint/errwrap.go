package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap enforces Go 1.13+ error idioms:
//
//   - fmt.Errorf formatting an error value uses %w, not %v or %s, so the
//     chain stays inspectable with errors.Is/errors.As (multiple %w verbs
//     are fine — the module targets go 1.22);
//   - sentinel errors are compared with errors.Is, not ==/!=: every layer
//     of this codebase wraps (rpc wraps transport, core wraps storage),
//     so an == comparison silently stops matching once a wrap is added.
func ErrWrap() *Analyzer {
	return &Analyzer{
		Name: "errwrap",
		Doc:  "wrap errors with %w; compare sentinels with errors.Is",
		Run:  runErrWrap,
	}
}

func runErrWrap(pass *Pass) {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	isErr := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.IsNil() {
			return false
		}
		return types.Implements(tv.Type, errIface) ||
			types.Identical(tv.Type, types.Universe.Lookup("error").Type())
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !isPkgFunc(calleeObj(pass.Info, n), "fmt", "Errorf") || len(n.Args) < 2 {
					return true
				}
				lit, ok := ast.Unparen(n.Args[0]).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				format, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				for i, verb := range formatVerbs(format) {
					argIdx := 1 + i
					if argIdx >= len(n.Args) {
						break
					}
					if (verb == 'v' || verb == 's') && isErr(n.Args[argIdx]) {
						pass.Reportf(n.Args[argIdx].Pos(), "error formatted with %%%c loses the chain: use %%w", verb)
					}
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isErr(n.X) || !isErr(n.Y) {
					return true
				}
				if sentinelVar(pass.Info, n.X) || sentinelVar(pass.Info, n.Y) {
					pass.Reportf(n.Pos(), "sentinel comparison with %s breaks once the error is wrapped: use errors.Is", n.Op)
				}
			}
			return true
		})
	}
}

// formatVerbs returns the verb letter for each argument a Printf-style
// format string consumes, in order. Explicitly indexed formats (%[1]v)
// and star widths are rare in this codebase and conservatively stop the
// scan.
func formatVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		c := rune(format[i])
		if c == '%' {
			continue
		}
		if c == '*' || c == '[' {
			return verbs // indexed or star format: bail out
		}
		verbs = append(verbs, c)
	}
	return verbs
}

// sentinelVar reports whether e refers to a package-level error variable
// (a sentinel such as storage.ErrChunkNotFound or io.EOF).
func sentinelVar(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}
