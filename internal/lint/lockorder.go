package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the module-wide mutex-acquisition-order graph and
// reports every cycle in it as a potential deadlock, with the full
// acquisition path (including the call chain when a lock is taken by a
// callee while the caller holds another).
//
// Lock identity is static, not per-instance: a receiver-field mutex is
// "pkg.Type.field" (an embedded sync.Mutex/RWMutex is "pkg.Type.Mutex"),
// a package-level mutex is "pkg.var". Two distinct instances of the
// same identity map to one node — that is deliberate: acquiring two
// locks of the same identity in a nested fashion (a self-edge) is a
// deadlock unless the instances are strictly ordered, and such sites
// must carry a suppression stating the ordering rule. Local and
// parameter mutexes are skipped (they have no stable module-wide
// identity).
//
// Edges come from a linear source-order walk of every function (the
// same discipline as lockblock: defer Unlock holds to function end, an
// Unlock anywhere earlier releases for what follows): acquiring B while
// A is held adds A -> B. Calls made while a lock is held propagate: the
// callee's transitively acquired locks (through the call graph, go
// statements and closures excluded, interface calls resolved to module
// implementations) all gain edges from every held lock, tagged with the
// call chain. RLock is ordered like Lock: reader cycles still deadlock
// once a writer queues between them.
//
// A cycle is reported once, at its first edge (smallest lock identity
// first, so the position is stable); suppress it there.
func LockOrder() *Analyzer {
	return &Analyzer{
		Name:      "lockorder",
		Doc:       "mutex acquisition order must be acyclic module-wide (deadlock freedom)",
		RunModule: runLockOrder,
	}
}

// lockEdge is one ordered pair in the acquisition graph: to was
// acquired while from was held.
type lockEdge struct {
	from, to string
	fn       *FuncInfo  // function whose walk produced the edge
	pos      token.Pos  // acquisition or call site in fn
	via      []*viaStep // call chain from fn to the Lock, empty if direct
}

// viaStep is one call on the chain from the lock holder to the
// acquisition site.
type viaStep struct {
	callee *FuncInfo
	pos    token.Pos // call site in the caller
}

// lockAcq is one lock a function may acquire during its execution,
// with the first (source-order) chain that reaches it.
type lockAcq struct {
	id  string
	pos token.Pos // the Lock/RLock site itself
	via []*viaStep
}

type lockOrderState struct {
	mp       *ModulePass
	graph    *CallGraph
	acquires map[*FuncInfo][]lockAcq
	visiting map[*FuncInfo]bool
	edges    map[string]map[string]*lockEdge
	nodes    []string
}

func runLockOrder(mp *ModulePass) {
	st := &lockOrderState{
		mp:       mp,
		graph:    mp.Mod.Graph(),
		acquires: make(map[*FuncInfo][]lockAcq),
		visiting: make(map[*FuncInfo]bool),
		edges:    make(map[string]map[string]*lockEdge),
	}
	for _, fi := range st.graph.Funcs() {
		st.collectEdges(fi)
	}
	st.reportCycles()
}

// mutexAcquire classifies call as a Lock/RLock on a mutex with a
// module-wide identity.
func mutexAcquire(pkg *Package, call *ast.CallExpr) (id string, held bool, release bool, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false, false
	}
	obj := calleeObj(pkg.Info, call)
	var typ string
	for _, t := range []string{"Mutex", "RWMutex"} {
		for _, m := range []string{"Lock", "RLock", "Unlock", "RUnlock"} {
			if isMethodOf(obj, "sync", t, m) {
				typ = t
				id, ok = lockIdentity(pkg, sel, typ)
				if !ok {
					return "", false, false, false
				}
				acquire := m == "Lock" || m == "RLock"
				return id, acquire, !acquire, true
			}
		}
	}
	return "", false, false, false
}

// lockIdentity derives the module-wide identity of the mutex behind a
// Lock/Unlock selector: "pkg.Type.field" for receiver fields,
// "pkg.Type.<Mutex|RWMutex>" for embedded mutexes, "pkg.var" for
// package-level mutexes. Locals and parameters yield ok=false.
func lockIdentity(pkg *Package, methodSel *ast.SelectorExpr, mutexType string) (string, bool) {
	recv := ast.Unparen(methodSel.X)

	// Embedded mutex: the selection path from the receiver to the
	// method has more than one hop (x.Lock() resolving through an
	// embedded sync.Mutex field).
	if selection, ok := pkg.Info.Selections[methodSel]; ok && len(selection.Index()) > 1 {
		if named := namedOf(typeOfExpr(pkg, recv)); named != nil {
			return typeID(named) + "." + mutexType, true
		}
		return "", false
	}

	switch e := recv.(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		v, ok := obj.(*types.Var)
		if !ok {
			return "", false
		}
		// Package-level mutex variable.
		if v.Parent() == pkg.Types.Scope() {
			return pkg.Types.Path() + "." + v.Name(), true
		}
		return "", false
	case *ast.SelectorExpr:
		// Field access: identity is the owning named type + field name.
		if named := namedOf(typeOfExpr(pkg, e.X)); named != nil {
			return typeID(named) + "." + e.Sel.Name, true
		}
		// Package-qualified var: pkg.Mu.Lock().
		if obj, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil &&
			obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name(), true
		}
		return "", false
	}
	return "", false
}

func typeOfExpr(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// namedOf unwraps pointers and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func typeID(n *types.Named) string {
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// acquiresOf returns the locks fi may acquire during its execution
// (directly or through static/interface callees), deduplicated by
// identity with the first source-order chain kept. Recursion through
// the call graph is cycle-guarded.
func (st *lockOrderState) acquiresOf(fi *FuncInfo) []lockAcq {
	if acqs, ok := st.acquires[fi]; ok {
		return acqs
	}
	if st.visiting[fi] {
		return nil
	}
	st.visiting[fi] = true
	defer delete(st.visiting, fi)

	var out []lockAcq
	seen := make(map[string]bool)
	add := func(a lockAcq) {
		if !seen[a.id] {
			seen[a.id] = true
			out = append(out, a)
		}
	}
	walkShallow(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, acquire, _, ok := mutexAcquire(fi.Pkg, call); ok {
			if acquire {
				add(lockAcq{id: id, pos: call.Pos()})
			}
			return false
		}
		callees, _ := st.graph.CalleeOf(fi.Pkg, call)
		for _, callee := range callees {
			for _, a := range st.acquiresOf(callee) {
				via := append([]*viaStep{{callee: callee, pos: call.Pos()}}, a.via...)
				add(lockAcq{id: a.id, pos: a.pos, via: via})
			}
		}
		return true
	})
	st.acquires[fi] = out
	return out
}

// collectEdges walks one function linearly, tracking held locks the
// same way lockblock does, and records acquisition-order edges.
func (st *lockOrderState) collectEdges(fi *FuncInfo) {
	type heldLock struct {
		id       string
		released bool
		deferred bool
	}
	var held []*heldLock
	heldIDs := func() []string {
		var ids []string
		for _, h := range held {
			if !h.released {
				ids = append(ids, h.id)
			}
		}
		return ids
	}
	release := func(id string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].id == id && !held[i].released {
				held[i].released = true
				return
			}
		}
	}

	walkShallow(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held to function end —
			// exactly what not releasing models — and a deferred call
			// runs outside this walk's held-set; skip either way.
			return false
		case *ast.CallExpr:
			if id, acquire, rel, ok := mutexAcquire(fi.Pkg, n); ok {
				if acquire {
					for _, from := range heldIDs() {
						st.addEdge(&lockEdge{from: from, to: id, fn: fi, pos: n.Pos()})
					}
					held = append(held, &heldLock{id: id})
				} else if rel {
					release(id)
				}
				return false
			}
			holders := heldIDs()
			if len(holders) == 0 {
				return true
			}
			callees, _ := st.graph.CalleeOf(fi.Pkg, n)
			for _, callee := range callees {
				for _, a := range st.acquiresOf(callee) {
					via := append([]*viaStep{{callee: callee, pos: n.Pos()}}, a.via...)
					for _, from := range holders {
						st.addEdge(&lockEdge{from: from, to: a.id, fn: fi, pos: n.Pos(), via: via})
					}
				}
			}
		}
		return true
	})
}

func (st *lockOrderState) addEdge(e *lockEdge) {
	m := st.edges[e.from]
	if m == nil {
		m = make(map[string]*lockEdge)
		st.edges[e.from] = m
		st.nodes = append(st.nodes, e.from)
	}
	if _, ok := m[e.to]; !ok {
		m[e.to] = e
	}
}

// reportCycles finds cycles in the acquisition graph and reports each
// once, deterministically: self-edges directly, and one representative
// (shortest, smallest-identity-rooted) cycle per strongly connected
// component.
func (st *lockOrderState) reportCycles() {
	sort.Strings(st.nodes)

	// Self-edges: nested acquisition of one identity.
	for _, n := range st.nodes {
		if e, ok := st.edges[n][n]; ok {
			st.mp.Reportf(e.pos, "potential deadlock: %s acquired while another %s is already held%s (nested same-identity locks deadlock unless instances are strictly ordered)",
				shortLockID(e.to), shortLockID(e.from), viaString(e.via))
		}
	}

	for _, comp := range st.sccs() {
		if len(comp) < 2 {
			continue
		}
		sort.Strings(comp)
		cycle := st.shortestCycle(comp)
		if cycle == nil {
			continue
		}
		var path []string
		var detail []string
		for _, e := range cycle {
			path = append(path, shortLockID(e.from))
			pos := st.mp.Fset.Position(e.pos)
			detail = append(detail, fmt.Sprintf("%s -> %s at %s:%d in %s%s",
				shortLockID(e.from), shortLockID(e.to), pos.Filename, pos.Line, e.fn.Name(), viaString(e.via)))
		}
		path = append(path, shortLockID(cycle[0].from))
		st.mp.Reportf(cycle[0].pos, "potential deadlock: lock-order cycle %s; acquisition path: %s",
			strings.Join(path, " -> "), strings.Join(detail, "; "))
	}
}

// shortLockID trims a lock identity's package path to its last segment
// for readable diagnostics ("core.Client.mu", not the full import path).
func shortLockID(id string) string {
	if i := lastSlash(id); i >= 0 {
		return id[i+1:]
	}
	return id
}

func viaString(via []*viaStep) string {
	if len(via) == 0 {
		return ""
	}
	var names []string
	for _, s := range via {
		names = append(names, s.callee.Name())
	}
	return " (via " + strings.Join(names, " -> ") + ")"
}

// sccs computes strongly connected components over the lock graph
// (iterative Tarjan with sorted neighbor order for determinism).
func (st *lockOrderState) sccs() [][]string {
	all := map[string]bool{}
	for _, n := range st.nodes {
		all[n] = true
		for to := range st.edges[n] {
			all[to] = true
		}
	}
	var order []string
	for n := range all {
		order = append(order, n)
	}
	sort.Strings(order)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var tos []string
		for to := range st.edges[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comps
}

// shortestCycle returns the edges of a shortest cycle through the
// smallest identity in comp, restricted to comp's nodes. Neighbor order
// is sorted, so the result is deterministic.
func (st *lockOrderState) shortestCycle(comp []string) []*lockEdge {
	inComp := make(map[string]bool, len(comp))
	for _, n := range comp {
		inComp[n] = true
	}
	root := comp[0] // comp is sorted by the caller

	// BFS from root back to root.
	type visit struct {
		node string
		prev *visit
		edge *lockEdge
	}
	queue := []*visit{{node: root}}
	seen := map[string]bool{root: true}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		var tos []string
		for to := range st.edges[v.node] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if !inComp[to] {
				continue
			}
			e := st.edges[v.node][to]
			if to == root {
				// Unwind the path.
				var edges []*lockEdge
				for cur := (&visit{prev: v, edge: e}); cur.edge != nil; cur = cur.prev {
					edges = append(edges, cur.edge)
				}
				for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
					edges[i], edges[j] = edges[j], edges[i]
				}
				return edges
			}
			if !seen[to] {
				seen[to] = true
				queue = append(queue, &visit{node: to, prev: v, edge: e})
			}
		}
	}
	return nil
}
