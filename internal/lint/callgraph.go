// Module-wide call graph for the interprocedural rules (lockorder,
// poolbalance, and the cross-function upgrades of lockblock and goleak).
// The graph is built once per Run from the go/types results the loader
// already produced: every function and method declared in the loaded
// packages becomes a node, and each node records its call sites in
// source order. Static calls resolve to their single callee; calls
// through an interface resolve to every module-declared concrete method
// that implements the interface (method-set resolution is bounded to
// the loaded packages and callees are sorted, so the graph — and every
// diagnostic derived from it — is deterministic). Calls inside `go`
// statements and function literals are excluded: they execute in a
// different context than the enclosing function, and every rule built
// on the graph reasons about what happens during a call.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Module is the whole-run state shared by every pass of one lint.Run:
// the loaded packages plus the lazily built call graph and per-function
// blocking summaries the interprocedural rules consume.
type Module struct {
	Fset *token.FileSet
	Pkgs []*Package

	graph     *CallGraph
	summaries map[*FuncInfo]*blockSummary
}

// NewModule wraps the packages of one run. The call graph is built on
// first use.
func NewModule(fset *token.FileSet, pkgs []*Package) *Module {
	return &Module{Fset: fset, Pkgs: pkgs}
}

// FuncInfo is one function or method declared in a loaded package,
// together with its outgoing call sites.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists the call sites in Decl's body, in source order,
	// excluding calls inside go statements and function literals.
	Calls []*CallSite
}

// Name returns the function's diagnostic name: "pkg.Func" or
// "pkg.(Type).Method" using the last import path segment.
func (fi *FuncInfo) Name() string {
	pkg := fi.Pkg.Path
	if i := lastSlash(pkg); i >= 0 {
		pkg = pkg[i+1:]
	}
	if recv := fi.Obj.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + ".(" + named.Obj().Name() + ")." + fi.Obj.Name()
		}
	}
	return pkg + "." + fi.Obj.Name()
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// CallSite is one call expression inside a function body. Static calls
// have exactly one callee; interface calls list every module type's
// implementation, and Interface is set so rules can choose a more
// conservative treatment for them.
type CallSite struct {
	Call      *ast.CallExpr
	Callees   []*FuncInfo
	Interface bool
}

// CallGraph indexes the module's functions and resolves call
// expressions to their targets.
type CallGraph struct {
	funcs  map[*types.Func]*FuncInfo
	sorted []*FuncInfo // deterministic iteration order (position)
}

// Graph returns the module's call graph, building it on first use.
func (m *Module) Graph() *CallGraph {
	if m.graph == nil {
		m.graph = buildCallGraph(m.Fset, m.Pkgs)
	}
	return m.graph
}

// Funcs returns every declared function in deterministic order
// (package path, then file position).
func (g *CallGraph) Funcs() []*FuncInfo { return g.sorted }

// FuncOf returns the FuncInfo for a declared module function, or nil
// for functions outside the loaded packages.
func (g *CallGraph) FuncOf(obj types.Object) *FuncInfo {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return g.funcs[fn]
}

// CalleeOf resolves one call expression appearing in pkg to its module
// callees. Static calls yield the single declared callee; interface
// method calls yield every module implementation. The boolean reports
// whether the call was through an interface.
func (g *CallGraph) CalleeOf(pkg *Package, call *ast.CallExpr) ([]*FuncInfo, bool) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selection, ok := pkg.Info.Selections[sel]; ok && ifaceRecv(selection) {
			if impls := g.implementers(selection); len(impls) > 0 {
				return impls, true
			}
			return nil, true
		}
	}
	if fi := g.FuncOf(calleeObj(pkg.Info, call)); fi != nil {
		return []*FuncInfo{fi}, false
	}
	return nil, false
}

// ifaceRecv reports whether a method selection's receiver is an
// interface type.
func ifaceRecv(sel *types.Selection) bool {
	t := sel.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// implementers resolves an interface method selection to the matching
// concrete methods of every module type implementing the interface.
func (g *CallGraph) implementers(sel *types.Selection) []*FuncInfo {
	iface, ok := sel.Recv().Underlying().(*types.Interface)
	if !ok {
		if p, isPtr := sel.Recv().(*types.Pointer); isPtr {
			iface, ok = p.Elem().Underlying().(*types.Interface)
		}
		if !ok {
			return nil
		}
	}
	name := sel.Obj().Name()
	var out []*FuncInfo
	seen := make(map[*FuncInfo]bool)
	for _, fi := range g.sorted {
		recv := fi.Obj.Type().(*types.Signature).Recv()
		if recv == nil || fi.Obj.Name() != name {
			continue
		}
		rt := recv.Type()
		if !types.Implements(rt, iface) && !types.Implements(types.NewPointer(rt), iface) {
			continue
		}
		if !seen[fi] {
			seen[fi] = true
			out = append(out, fi)
		}
	}
	return out
}

func buildCallGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	g := &CallGraph{funcs: make(map[*types.Func]*FuncInfo)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				g.funcs[obj] = fi
				g.sorted = append(g.sorted, fi)
			}
		}
	}
	sort.Slice(g.sorted, func(i, j int) bool {
		a, b := g.sorted[i], g.sorted[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	// Resolve call sites after every node exists, so forward and
	// cross-package references land on the same FuncInfo instances.
	for _, fi := range g.sorted {
		fi.Calls = g.collectCalls(fi.Pkg, fi.Decl.Body)
	}
	return g
}

// collectCalls gathers the call sites of one body in source order,
// skipping go statements and function literals (different execution
// contexts).
func (g *CallGraph) collectCalls(pkg *Package, body *ast.BlockStmt) []*CallSite {
	var out []*CallSite
	walkShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callees, iface := g.CalleeOf(pkg, call)
		if len(callees) > 0 {
			out = append(out, &CallSite{Call: call, Callees: callees, Interface: iface})
		}
		return true
	})
	return out
}

// blockSummary describes whether a function directly performs an
// operation that can block indefinitely — the one-level summary the
// interprocedural lockblock upgrade consumes. Only operations in the
// function's own body count (go statements and closures excluded), and
// a select with a default case is non-blocking.
type blockSummary struct {
	blocks bool
	kind   string    // "channel send", "channel receive", "select", "time.Sleep"
	pos    token.Pos // site of the blocking operation
}

// BlockSummary reports whether fi directly blocks, with the kind and
// position of the first blocking operation in source order.
func (m *Module) BlockSummary(fi *FuncInfo) (kind string, pos token.Pos, blocks bool) {
	if m.summaries == nil {
		m.summaries = make(map[*FuncInfo]*blockSummary)
	}
	s, ok := m.summaries[fi]
	if !ok {
		s = summarizeBlocking(fi)
		m.summaries[fi] = s
	}
	return s.kind, s.pos, s.blocks
}

func summarizeBlocking(fi *FuncInfo) *blockSummary {
	s := &blockSummary{}
	record := func(kind string, pos token.Pos) {
		if !s.blocks {
			s.blocks = true
			s.kind = kind
			s.pos = pos
		}
	}
	walkShallow(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			record("channel send", n.Pos())
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				record("select", n.Pos())
			}
			return false // comm clauses belong to the select's verdict
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				record("channel receive", n.Pos())
			}
		case *ast.CallExpr:
			if isPkgFunc(calleeObj(fi.Pkg.Info, n), "time", "Sleep") {
				record("time.Sleep", n.Pos())
			}
		}
		return true
	})
	return s
}
