package lint

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden-file tests load the fixture packages under testdata/src and
// compare each rule's diagnostics against `// want "substring"` comments:
// every want comment must be matched by a diagnostic on its line whose
// message contains the quoted substring, and every diagnostic must be
// claimed by a want comment. Suppressed and clean fixtures carry no want
// comments, so any finding there fails the test.

var (
	wantRE   = regexp.MustCompile(`// want (.*)$`)
	quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

func collectWants(t *testing.T, fset *token.FileSet, pkgs []*Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					quoted := quotedRE.FindAllString(m[1], -1)
					if len(quoted) == 0 {
						t.Fatalf("%s:%d: want comment without a quoted substring", pos.Filename, pos.Line)
					}
					for _, q := range quoted {
						substr, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, substr: substr})
					}
				}
			}
		}
	}
	return wants
}

func runGolden(t *testing.T, l *Loader, rule, dir string) {
	t.Helper()
	pkgs, err := l.LoadDirs(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	analyzers, err := ByName(Suite(), []string{rule})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(l.Fset, analyzers, pkgs)
	wants := collectWants(t, l.Fset, pkgs)

	for _, d := range diags {
		claimed := false
		// Several want substrings on one line may all match the same
		// diagnostic (a lockorder cycle asserts both the cycle and its
		// call chain), so matching does not consume the want.
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				claimed = true
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic containing %q", w.file, w.line, w.substr)
		}
	}
}

func TestGoldenFiles(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ rule, dir string }{
		{"ctxfirst", "internal/lint/testdata/src/ctxfirst/storage"},
		{"lockblock", "internal/lint/testdata/src/lockblock/lockblock"},
		{"goleak", "internal/lint/testdata/src/goleak/goleak"},
		{"goleak", "internal/lint/testdata/src/goleak/gateway"},
		{"determinism", "internal/lint/testdata/src/determinism/sim"},
		{"determinism", "internal/lint/testdata/src/determinism/cache"},
		{"determinism", "internal/lint/testdata/src/determinism/tasks"},
		{"determinism", "internal/lint/testdata/src/determinism/gateway"},
		{"determinism", "internal/lint/testdata/src/determinism/metadata"},
		{"errwrap", "internal/lint/testdata/src/errwrap/errwrap"},
		{"metricname", "internal/lint/testdata/src/metricname/metricname"},
		{"lockorder", "internal/lint/testdata/src/lockorder/lockorder"},
		{"poolbalance", "internal/lint/testdata/src/poolbalance/poolbalance"},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			runGolden(t, l, tc.rule, tc.dir)
		})
	}
}

// TestMalformedDirective checks that a //lint:ignore with no reason is
// itself reported, under the "ignore" pseudo-rule.
func TestMalformedDirective(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadDirs("internal/lint/testdata/src/ignore/ignore")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(l.Fset, Suite(), pkgs)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Rule != "ignore" || !strings.Contains(diags[0].Message, "malformed directive") {
		t.Fatalf("unexpected diagnostic: %s", diags[0])
	}
}

// TestModuleLintsClean runs the full suite over the real module: the
// codebase must stay clean (every deliberate exception carries its own
// suppression with a reason).
func TestModuleLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(l.Fset, Suite(), pkgs)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
