package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"runtime"
	"strings"
	"testing"
)

func TestFileNameIncluded(t *testing.T) {
	otherArch := "arm64"
	if runtime.GOARCH == "arm64" {
		otherArch = "amd64"
	}
	otherOS := "windows"
	if runtime.GOOS == "windows" {
		otherOS = "linux"
	}
	cases := []struct {
		name string
		want bool
	}{
		{"kernel.go", true},
		{"pool.go", true}, // "pool" is not a GOOS/GOARCH tag
		{fmt.Sprintf("kernel_%s.go", runtime.GOARCH), true},
		{fmt.Sprintf("kernel_%s.go", otherArch), false},
		{fmt.Sprintf("kernel_%s.go", otherOS), false},
		{fmt.Sprintf("kernel_%s_%s.go", runtime.GOOS, runtime.GOARCH), true},
		{fmt.Sprintf("kernel_%s_%s.go", otherOS, runtime.GOARCH), false},
	}
	for _, tc := range cases {
		if got := fileNameIncluded(tc.name); got != tc.want {
			t.Errorf("fileNameIncluded(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestBuildConstraintsSatisfied(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"package p\n", true},
		{fmt.Sprintf("//go:build %s\n\npackage p\n", runtime.GOARCH), true},
		{fmt.Sprintf("//go:build !%s\n\npackage p\n", runtime.GOARCH), false},
		{fmt.Sprintf("//go:build %s && gc\n\npackage p\n", runtime.GOOS), true},
		{"//go:build neverdefined\n\npackage p\n", false},
		// A constraint after the package clause is documentation, not a
		// directive.
		{"package p\n\n//go:build neverdefined\n", true},
	}
	fset := token.NewFileSet()
	for _, tc := range cases {
		f, err := parser.ParseFile(fset, "x.go", tc.src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		if got := buildConstraintsSatisfied(f); got != tc.want {
			t.Errorf("buildConstraintsSatisfied(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

// TestBuildConstraintPairNoDoubleReport pins that a //go:build race /
// !race file pair defining the same symbol does not double-load: the
// package type-checks (one variant excluded), and a violation present
// in both variants is reported exactly once, from the included file.
// The lint loader never sets the race tag, so the !race variant wins.
func TestBuildConstraintPairNoDoubleReport(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadDirs("internal/lint/testdata/src/buildtag/buildtag")
	if err != nil {
		t.Fatalf("loading a race/!race file pair: %v", err)
	}
	analyzers, err := ByName(Suite(), []string{"goleak"})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(l.Fset, analyzers, pkgs)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (one variant loaded): %v", len(diags), diags)
	}
	if !strings.HasSuffix(diags[0].Pos.Filename, "norace.go") {
		t.Errorf("diagnostic from %s, want the !race variant norace.go", diags[0].Pos.Filename)
	}
}

// TestLoaderHandlesPerArchFiles loads the gf256 package, which carries
// mutually exclusive kernel files (kernel_amd64.go vs kernel_noasm.go);
// without constraint filtering the type check fails on duplicate
// symbols.
func TestLoaderHandlesPerArchFiles(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadDirs("internal/gf256")
	if err != nil {
		t.Fatalf("loading a package with per-arch kernel files: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	for _, f := range pkgs[0].Files {
		name := l.Fset.Position(f.Pos()).Filename
		if !fileNameIncluded(name) {
			t.Errorf("loaded excluded file %s", name)
		}
	}
}
