package lint

import (
	"go/ast"
	"go/types"
)

// LockBlock forbids operations that can block indefinitely while a
// sync.Mutex or sync.RWMutex is held: channel sends and receives,
// select, time.Sleep, calls into context-taking APIs (the marker for
// network and storage I/O), and storage.SiteAPI methods. It also flags
// a Lock with no matching Unlock on the fall-through path and returns
// that leave the critical section without an Unlock or defer Unlock.
//
// On top of the intraprocedural walk the rule is one-level
// interprocedural via the module call graph: a static call — across
// package boundaries — into a module function that directly blocks
// (channel operation, select without default, time.Sleep in its own
// body) is flagged at the call site while a lock is held. Only static
// calls participate: interface calls are already covered by the
// SiteAPI and context-taking checks, and deeper transitive blocking is
// left to the callee's own intraprocedural findings.
//
// The analysis is a linear source-order walk per function: it tracks
// which mutexes are held, treats `defer mu.Unlock()` as covering every
// return, and does not follow control flow across branches — an Unlock
// anywhere earlier in source order releases the lock for what follows.
// That under-reports some interleavings but never flags correct code.
func LockBlock() *Analyzer {
	return &Analyzer{
		Name: "lockblock",
		Doc:  "no blocking operations while a sync mutex is held",
		Run:  runLockBlock,
	}
}

// lockState tracks one held mutex within a function walk.
type lockState struct {
	expr     string // printed receiver expression, e.g. "s.mu"
	rlock    bool
	pos      ast.Node
	deferred bool // a defer Unlock covers the rest of the function
	released bool
}

func runLockBlock(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLocks(pass, fd.Body)
			// Closures (including goroutine bodies) are separate
			// execution contexts with their own critical sections.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkLocks(pass, lit.Body)
				}
				return true
			})
		}
	}
}

// mutexMethod classifies a call as a mutex Lock/Unlock and returns the
// printed receiver expression identifying the mutex.
func mutexMethod(pass *Pass, call *ast.CallExpr) (recv string, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj := calleeObj(pass.Info, call)
	for _, typ := range []string{"Mutex", "RWMutex"} {
		for _, m := range []string{"Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock"} {
			if isMethodOf(obj, "sync", typ, m) {
				return types.ExprString(sel.X), m, true
			}
		}
	}
	return "", "", false
}

func checkLocks(pass *Pass, body *ast.BlockStmt) {
	var held []*lockState

	heldAny := func() *lockState {
		for _, h := range held {
			if !h.released {
				return h
			}
		}
		return nil
	}
	find := func(expr string, rlock bool) *lockState {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].expr == expr && held[i].rlock == rlock && !held[i].released {
				return held[i]
			}
		}
		return nil
	}

	walkShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if recv, method, ok := mutexMethod(pass, call); ok {
					switch method {
					case "Lock", "RLock":
						held = append(held, &lockState{expr: recv, rlock: method == "RLock", pos: call})
					case "Unlock", "RUnlock":
						if h := find(recv, method == "RUnlock"); h != nil {
							h.released = true
						}
					}
					return false
				}
			}
		case *ast.DeferStmt:
			if recv, method, ok := mutexMethod(pass, n.Call); ok && (method == "Unlock" || method == "RUnlock") {
				if h := find(recv, method == "RUnlock"); h != nil {
					h.deferred = true
				}
				return false
			}
			// Other deferred calls run at return time; do not treat
			// their bodies as executing inside the critical section,
			// but honour Unlocks deferred through a closure.
			ast.Inspect(n.Call, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if recv, method, ok := mutexMethod(pass, call); ok && (method == "Unlock" || method == "RUnlock") {
						if h := find(recv, method == "RUnlock"); h != nil {
							h.deferred = true
						}
					}
				}
				return true
			})
			return false
		case *ast.ReturnStmt:
			for _, h := range held {
				if !h.released && !h.deferred {
					pass.Reportf(n.Pos(), "return while %s is held without Unlock or defer Unlock", h.expr)
				}
			}
		case *ast.SendStmt:
			if h := heldAny(); h != nil {
				pass.Reportf(n.Pos(), "channel send while %s is held", h.expr)
			}
		case *ast.SelectStmt:
			if h := heldAny(); h != nil {
				pass.Reportf(n.Pos(), "select while %s is held", h.expr)
			}
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if h := heldAny(); h != nil {
					pass.Reportf(n.Pos(), "channel receive while %s is held", h.expr)
				}
			}
		case *ast.CallExpr:
			h := heldAny()
			if h == nil {
				return true
			}
			obj := calleeObj(pass.Info, n)
			if isPkgFunc(obj, "time", "Sleep") {
				pass.Reportf(n.Pos(), "time.Sleep while %s is held", h.expr)
				return true
			}
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
				return true
			}
			if isSiteAPICall(pass.Info, n) {
				pass.Reportf(n.Pos(), "storage.SiteAPI call while %s is held", h.expr)
				return true
			}
			if sig := calleeSignature(pass.Info, n); sig != nil && firstParamIsContext(sig) {
				pass.Reportf(n.Pos(), "call into context-taking API while %s is held", h.expr)
				return true
			}
			// One-level interprocedural: a static call into a module
			// function that directly blocks is as bad as blocking here.
			if callees, iface := pass.Mod.Graph().CalleeOf(pass.Package, n); !iface && len(callees) == 1 {
				if kind, pos, blocks := pass.Mod.BlockSummary(callees[0]); blocks {
					bp := pass.Fset.Position(pos)
					pass.Reportf(n.Pos(), "call to %s, which blocks (%s at %s:%d), while %s is held",
						callees[0].Name(), kind, bp.Filename, bp.Line, h.expr)
				}
			}
		}
		return true
	})

	for _, h := range held {
		if !h.released && !h.deferred {
			pass.Reportf(h.pos.Pos(), "%s.Lock is never released on the fall-through path (no Unlock or defer Unlock)", h.expr)
		}
	}
}

// isSiteAPICall reports whether call invokes a method through the
// storage.SiteAPI interface (directly or via a testdata stand-in named
// SiteAPI).
func isSiteAPICall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	t := selection.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return false
	}
	return named.Obj().Name() == "SiteAPI"
}
