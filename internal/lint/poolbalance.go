package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolBalance checks that every value obtained from a pool reaches a
// matching release on all paths. Pool sources are (*sync.Pool).Get and
// any module function inferred (transitively, through the call graph)
// to return a pooled value — erasure.EncodePooled, getBuf,
// AcquireBuffer and friends qualify without being hardcoded. Releasers
// are (*sync.Pool).Put and any module function that passes a parameter
// (or its receiver) to a releaser — putBuf, ReleaseBuffer,
// (*Stripe).Release.
//
// Each function (and each function literal, as its own unit) is walked
// with branch-aware, optimistic path tracking: a pooled value assigned
// to a plain local variable must be released, deferred-released,
// returned (ownership moves to the caller), or escape (stored in a
// field/global, passed to a non-releaser call, captured by a closure —
// after which this analysis trusts the new owner) before every return
// and before function end. The error-return idiom is understood:
// after `v, err := Source(...)`, paths guarded by `err != nil` treat v
// as absent. Releasing the same variable twice in straight-line code is
// reported as a double release, and discarding a source's result
// (calling it as a statement) is reported as an immediate leak.
// Branches merge optimistically (released in either arm counts as
// released), so the rule under-reports rather than flag correct code.
func PoolBalance() *Analyzer {
	return &Analyzer{
		Name:      "poolbalance",
		Doc:       "pooled values must reach a matching Put/Release on every path",
		RunModule: runPoolBalance,
	}
}

type poolBalanceState struct {
	mp    *ModulePass
	graph *CallGraph

	// sources maps module functions that return a pooled value; the
	// string describes the ultimate origin for diagnostics.
	sources map[*FuncInfo]bool
	// releaseParams maps module functions to the parameter indexes they
	// release; index -1 means the receiver.
	releaseParams map[*FuncInfo]map[int]bool

	srcVisiting map[*FuncInfo]bool
	relVisiting map[*FuncInfo]bool
}

func runPoolBalance(mp *ModulePass) {
	st := &poolBalanceState{
		mp:            mp,
		graph:         mp.Mod.Graph(),
		sources:       make(map[*FuncInfo]bool),
		releaseParams: make(map[*FuncInfo]map[int]bool),
		srcVisiting:   make(map[*FuncInfo]bool),
		relVisiting:   make(map[*FuncInfo]bool),
	}
	for _, fi := range st.graph.Funcs() {
		st.checkFunc(fi.Pkg, fi.Decl.Body)
		// Function literals are separate execution units with their own
		// pool obligations.
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				st.checkFunc(fi.Pkg, lit.Body)
			}
			return true
		})
	}
}

// isPoolGet reports whether call is (*sync.Pool).Get.
func isPoolGet(pkg *Package, call *ast.CallExpr) bool {
	return isMethodOf(calleeObj(pkg.Info, call), "sync", "Pool", "Get")
}

// isPoolPut reports whether call is (*sync.Pool).Put.
func isPoolPut(pkg *Package, call *ast.CallExpr) bool {
	return isMethodOf(calleeObj(pkg.Info, call), "sync", "Pool", "Put")
}

// isSourceFn reports whether fi returns a pooled value: directly from
// (*sync.Pool).Get, or from another source function, without releasing
// it first. The scan is deliberately simple — a variable assigned from
// a source call (through parens and type assertions, and through plain
// ident aliasing) that appears in a return statement marks the function.
func (st *poolBalanceState) isSourceFn(fi *FuncInfo) bool {
	if v, ok := st.sources[fi]; ok {
		return v
	}
	if st.srcVisiting[fi] {
		return false
	}
	st.srcVisiting[fi] = true
	defer delete(st.srcVisiting, fi)

	pooled := make(map[types.Object]bool)
	isSourceCall := func(call *ast.CallExpr) bool {
		if isPoolGet(fi.Pkg, call) {
			return true
		}
		callees, iface := st.graph.CalleeOf(fi.Pkg, call)
		if iface || len(callees) != 1 {
			return false
		}
		return st.isSourceFn(callees[0])
	}
	exprPooled := func(e ast.Expr) bool {
		e = unwrapPooled(e)
		if call, ok := e.(*ast.CallExpr); ok {
			return isSourceCall(call)
		}
		if id, ok := e.(*ast.Ident); ok {
			return pooled[fi.Pkg.Info.Uses[id]]
		}
		return false
	}

	result := false
	walkShallow(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 && i == 0 {
					rhs = n.Rhs[0]
				}
				if rhs != nil && exprPooled(rhs) {
					if obj := fi.Pkg.Info.Defs[id]; obj != nil {
						pooled[obj] = true
					} else if obj := fi.Pkg.Info.Uses[id]; obj != nil {
						pooled[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if exprPooled(res) {
					result = true
				}
			}
		}
		return true
	})
	st.sources[fi] = result
	return result
}

// unwrapPooled strips parens and type assertions: the pooled value
// flows through `v.(*T)` unchanged.
func unwrapPooled(e ast.Expr) ast.Expr {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.TypeAssertExpr:
			e = t.X
		default:
			return t
		}
	}
}

// releaserOf returns the parameter indexes (receiver = -1) that fi
// releases, inferred transitively: a parameter passed (as a plain
// ident) to (*sync.Pool).Put or to another releaser's releasing
// position counts.
func (st *poolBalanceState) releaserOf(fi *FuncInfo) map[int]bool {
	if m, ok := st.releaseParams[fi]; ok {
		return m
	}
	if st.relVisiting[fi] {
		return nil
	}
	st.relVisiting[fi] = true
	defer delete(st.relVisiting, fi)

	// Map each parameter/receiver object to its index.
	paramIdx := make(map[types.Object]int)
	if fi.Decl.Recv != nil && len(fi.Decl.Recv.List) == 1 && len(fi.Decl.Recv.List[0].Names) == 1 {
		if obj := fi.Pkg.Info.Defs[fi.Decl.Recv.List[0].Names[0]]; obj != nil {
			paramIdx[obj] = -1
		}
	}
	idx := 0
	if fi.Decl.Type.Params != nil {
		for _, field := range fi.Decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := fi.Pkg.Info.Defs[name]; obj != nil {
					paramIdx[obj] = idx
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}

	released := make(map[int]bool)
	walkShallow(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, pos := range st.releaseArgs(fi.Pkg, call) {
			if id, ok := ast.Unparen(pos).(*ast.Ident); ok {
				if i, ok := paramIdx[fi.Pkg.Info.Uses[id]]; ok {
					released[i] = true
				}
			}
		}
		return true
	})
	st.releaseParams[fi] = released
	return released
}

// releaseArgs returns the argument expressions (receiver included)
// that call releases, or nil if call is not a releasing call.
func (st *poolBalanceState) releaseArgs(pkg *Package, call *ast.CallExpr) []ast.Expr {
	if isPoolPut(pkg, call) && len(call.Args) == 1 {
		return call.Args[:1]
	}
	callees, iface := st.graph.CalleeOf(pkg, call)
	if iface || len(callees) != 1 {
		return nil
	}
	idxs := st.releaserOf(callees[0])
	if len(idxs) == 0 {
		return nil
	}
	var out []ast.Expr
	if idxs[-1] {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out = append(out, sel.X)
		}
	}
	for i, arg := range call.Args {
		if idxs[i] {
			out = append(out, arg)
		}
	}
	return out
}

// pooledVar tracks one local variable holding a pooled value.
type pooledVar struct {
	name     string
	origin   string    // description of the source, e.g. "stripePool.Get"
	pos      token.Pos // source call site
	released bool
	deferred bool
	escaped  bool
}

// pbScope is the per-path state of the balance walk.
type pbScope struct {
	vars map[types.Object]*pooledVar
	// errOf associates an error variable with the pooled variable
	// assigned in the same statement, for the err != nil idiom.
	errOf map[types.Object]types.Object
}

func (s *pbScope) clone() *pbScope {
	c := &pbScope{vars: make(map[types.Object]*pooledVar, len(s.vars)), errOf: s.errOf}
	for k, v := range s.vars {
		cv := *v
		c.vars[k] = &cv
	}
	return c
}

// merge folds a branch scope back optimistically: a release or escape
// on either path counts, and variables first seen in the branch are
// adopted so function-end checking covers them.
func (s *pbScope) merge(b *pbScope) {
	for k, bv := range b.vars {
		if sv, ok := s.vars[k]; ok {
			sv.released = sv.released || bv.released
			sv.deferred = sv.deferred || bv.deferred
			sv.escaped = sv.escaped || bv.escaped
		} else {
			s.vars[k] = bv
		}
	}
}

// terminates reports whether a statement list cannot fall through: it
// ends in a return, a break/continue/goto, or an if whose arms both
// terminate. Branch scopes that terminate are not merged back — their
// releases never happen on the fall-through path (this is what keeps
// `case EOF: Release(buf); continue` from turning a later error-path
// Release into a phantom double release).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.IfStmt:
		if s.Else == nil || !terminates(s.Body.List) {
			return false
		}
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			return terminates(e.List)
		case *ast.IfStmt:
			return terminates([]ast.Stmt{e})
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (st *poolBalanceState) checkFunc(pkg *Package, body *ast.BlockStmt) {
	scope := &pbScope{
		vars:  make(map[types.Object]*pooledVar),
		errOf: make(map[types.Object]types.Object),
	}
	st.walkStmts(pkg, body.List, scope)
	for _, v := range sortedPooled(scope.vars) {
		if !v.released && !v.deferred && !v.escaped {
			st.mp.Reportf(v.pos, "pooled value %s obtained from %s is never released (no Put/Release on the fall-through path)", v.name, v.origin)
		}
	}
}

// sortedPooled orders tracked variables by source position for
// deterministic reporting.
func sortedPooled(m map[types.Object]*pooledVar) []*pooledVar {
	var out []*pooledVar
	for _, v := range m {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].pos > out[j].pos; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// sourceCallOrigin classifies call as a pool source and names it.
func (st *poolBalanceState) sourceCallOrigin(pkg *Package, call *ast.CallExpr) (string, bool) {
	if isPoolGet(pkg, call) {
		return types.ExprString(call.Fun), true
	}
	callees, iface := st.graph.CalleeOf(pkg, call)
	if iface || len(callees) != 1 {
		return "", false
	}
	if st.isSourceFn(callees[0]) {
		return callees[0].Name(), true
	}
	return "", false
}

func (st *poolBalanceState) walkStmts(pkg *Package, stmts []ast.Stmt, sc *pbScope) {
	for _, stmt := range stmts {
		st.walkStmt(pkg, stmt, sc)
	}
}

// escapeIdents marks tracked variables whose pointer flows out of the
// function's hands anywhere in n as escaped — the safe default for
// constructs the walk does not model. Dereferencing uses (v.field,
// v[i]) keep the value tracked: writing into the pooled object is what
// the buffer is for, only the pointer itself moving transfers
// ownership.
func escapeIdents(pkg *Package, n ast.Node, sc *pbScope) {
	if n == nil {
		return
	}
	deref := make(map[*ast.Ident]bool)
	ast.Inspect(n, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				deref[id] = true
			}
			deref[e.Sel] = true
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				deref[id] = true
			}
		case *ast.Ident:
			if deref[e] {
				return true
			}
			if v, ok := sc.vars[pkg.Info.Uses[e]]; ok {
				v.escaped = true
			}
		}
		return true
	})
}

func (st *poolBalanceState) walkStmt(pkg *Package, stmt ast.Stmt, sc *pbScope) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		st.walkAssign(pkg, s, sc)
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			escapeIdents(pkg, s, sc)
			return
		}
		if st.applyRelease(pkg, call, sc, false) {
			return
		}
		if origin, ok := st.sourceCallOrigin(pkg, call); ok {
			st.mp.Reportf(call.Pos(), "result of pool source %s is discarded: the pooled value leaks immediately", origin)
			return
		}
		escapeIdents(pkg, s, sc)
	case *ast.DeferStmt:
		if st.applyRelease(pkg, s.Call, sc, true) {
			return
		}
		// A deferred closure may carry the release.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			found := false
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if st.applyRelease(pkg, call, sc, true) {
						found = true
					}
				}
				return true
			})
			if found {
				return
			}
		}
		escapeIdents(pkg, s, sc)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if id, ok := unwrapPooled(res).(*ast.Ident); ok {
				if v, ok := sc.vars[pkg.Info.Uses[id]]; ok {
					v.escaped = true // ownership moves to the caller
					continue
				}
			}
			escapeIdents(pkg, res, sc)
		}
		for _, v := range sortedPooled(sc.vars) {
			if !v.released && !v.deferred && !v.escaped {
				st.mp.Reportf(s.Pos(), "return without releasing pooled value %s obtained from %s at line %d", v.name, v.origin, st.mp.Fset.Position(v.pos).Line)
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			st.walkStmt(pkg, s.Init, sc)
		}
		suspendThen, suspendElse := errGuard(pkg, s.Cond, sc)
		// Nil guard on the pooled variable itself: `if v == nil` means v
		// is absent in the then branch; `if v != nil { ...return }`
		// means v is absent after the if.
		nilObj, nilEq := nilGuard(pkg, s.Cond, sc)
		if nilObj != nil && nilEq {
			suspendThen = append(suspendThen, nilObj)
		}
		base := sc.clone() // both arms start from the pre-branch state
		thenScope := base.clone()
		for _, obj := range suspendThen {
			delete(thenScope.vars, obj)
		}
		st.walkStmts(pkg, s.Body.List, thenScope)
		for _, obj := range suspendThen {
			delete(thenScope.vars, obj) // do not re-adopt the suspended var
		}
		if !terminates(s.Body.List) {
			sc.merge(thenScope)
		}
		if s.Else != nil {
			elseScope := base.clone()
			for _, obj := range suspendElse {
				delete(elseScope.vars, obj)
			}
			var elseStmts []ast.Stmt
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseStmts = e.List
				st.walkStmts(pkg, e.List, elseScope)
			case *ast.IfStmt:
				elseStmts = []ast.Stmt{e}
				st.walkStmt(pkg, e, elseScope)
			}
			for _, obj := range suspendElse {
				delete(elseScope.vars, obj)
			}
			if !terminates(elseStmts) {
				sc.merge(elseScope)
			}
		}
		if nilObj != nil && !nilEq && terminates(s.Body.List) {
			// `if v != nil { ... return/continue }`: past this point v
			// is nil, so it carries no release obligation.
			delete(sc.vars, nilObj)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st.walkStmt(pkg, s.Init, sc)
		}
		escapeIdents(pkg, s.Cond, sc)
		branch := sc.clone()
		st.walkStmts(pkg, s.Body.List, branch)
		if s.Post != nil {
			st.walkStmt(pkg, s.Post, branch)
		}
		sc.merge(branch)
	case *ast.RangeStmt:
		escapeIdents(pkg, s.X, sc)
		branch := sc.clone()
		st.walkStmts(pkg, s.Body.List, branch)
		sc.merge(branch)
	case *ast.BlockStmt:
		st.walkStmts(pkg, s.List, sc)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st.walkStmt(pkg, s.Init, sc)
		}
		escapeIdents(pkg, s.Tag, sc)
		base := sc.clone() // every case starts from the pre-switch state
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				branch := base.clone()
				st.walkStmts(pkg, cc.Body, branch)
				if !terminates(cc.Body) {
					sc.merge(branch)
				}
			}
		}
	case *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.GoStmt, *ast.LabeledStmt:
		escapeIdents(pkg, stmt, sc)
	default:
		escapeIdents(pkg, stmt, sc)
	}
}

// walkAssign handles v := Source(...) tracking, the paired error
// variable, and escapes through any other use.
func (st *poolBalanceState) walkAssign(pkg *Package, s *ast.AssignStmt, sc *pbScope) {
	// v := Source(...) or v, err := Source(...).
	if len(s.Rhs) == 1 {
		if call, ok := unwrapPooled(s.Rhs[0]).(*ast.CallExpr); ok {
			if origin, ok := st.sourceCallOrigin(pkg, call); ok {
				var tracked types.Object
				switch lhs := s.Lhs[0].(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						// Explicitly discarded pooled value.
						st.mp.Reportf(call.Pos(), "result of pool source %s is discarded: the pooled value leaks immediately", origin)
					} else if obj := lhsObj(pkg, lhs); obj != nil {
						tracked = obj
						sc.vars[obj] = &pooledVar{name: lhs.Name, origin: origin, pos: call.Pos()}
					}
				default:
					// Stored into a field, map or slice element: the
					// value escapes to the new owner, who releases it.
					escapeIdents(pkg, lhs, sc)
				}
				// Pair the error result for the err != nil idiom.
				if tracked != nil && len(s.Lhs) == 2 {
					if id, ok := s.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
						if obj := lhsObj(pkg, id); obj != nil {
							sc.errOf[obj] = tracked
						}
					}
				}
				return
			}
		}
	}
	// Reassigning a tracked variable unties the old value; any tracked
	// variable used on the right-hand side escapes.
	for _, rhs := range s.Rhs {
		escapeIdents(pkg, rhs, sc)
	}
	for _, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if v, ok := sc.vars[pkg.Info.Uses[id]]; ok {
				v.escaped = true
			}
			continue
		}
		escapeIdents(pkg, lhs, sc)
	}
}

// lhsObj resolves the object an assignment left-hand ident binds:
// Defs for :=, Uses for =.
func lhsObj(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id]
}

// applyRelease marks tracked variables released by call. deferred
// releases cover every later return. A second (non-deferred) release of
// an already released variable is a double-release finding. It returns
// whether call was a releasing call on a tracked variable.
func (st *poolBalanceState) applyRelease(pkg *Package, call *ast.CallExpr, sc *pbScope, deferred bool) bool {
	args := st.releaseArgs(pkg, call)
	if len(args) == 0 {
		return false
	}
	any := false
	for _, arg := range args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			escapeIdents(pkg, arg, sc)
			continue
		}
		v, ok := sc.vars[pkg.Info.Uses[id]]
		if !ok {
			continue
		}
		any = true
		if v.released || v.deferred {
			st.mp.Reportf(call.Pos(), "pooled value %s released twice (first release covers it; a second Put corrupts the pool)", v.name)
			continue
		}
		if deferred {
			v.deferred = true
		} else {
			v.released = true
		}
	}
	// Even when no tracked var matched, a releasing call consumed its
	// arguments; nothing else to escape.
	return any || len(args) > 0
}

// errGuard matches the error-check idiom on an if condition: for
// `err != nil` the paired pooled variable is absent in the then branch
// (suspendThen); for `err == nil` it is absent in the else branch.
func errGuard(pkg *Package, cond ast.Expr, sc *pbScope) (suspendThen, suspendElse []types.Object) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil, nil
	}
	var errExpr ast.Expr
	switch {
	case isNilIdent(be.Y):
		errExpr = be.X
	case isNilIdent(be.X):
		errExpr = be.Y
	default:
		return nil, nil
	}
	id, ok := ast.Unparen(errExpr).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	obj := pkg.Info.Uses[id]
	pooledObj, ok := sc.errOf[obj]
	if !ok {
		return nil, nil
	}
	v, ok := sc.vars[pooledObj]
	if !ok || v.released || v.deferred || v.escaped {
		return nil, nil
	}
	switch be.Op {
	case token.NEQ:
		return []types.Object{pooledObj}, nil
	case token.EQL:
		return nil, []types.Object{pooledObj}
	}
	return nil, nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// nilGuard matches a nil comparison against a tracked pooled variable:
// `v == nil` (eq=true) or `v != nil` (eq=false).
func nilGuard(pkg *Package, cond ast.Expr, sc *pbScope) (obj types.Object, eq bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	var varExpr ast.Expr
	switch {
	case isNilIdent(be.Y):
		varExpr = be.X
	case isNilIdent(be.X):
		varExpr = be.Y
	default:
		return nil, false
	}
	id, ok := ast.Unparen(varExpr).(*ast.Ident)
	if !ok {
		return nil, false
	}
	o := pkg.Info.Uses[id]
	if _, tracked := sc.vars[o]; !tracked {
		return nil, false
	}
	return o, be.Op == token.EQL
}
