package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
)

// metricNameRE is the naming convention for the obs registry: lowercase
// snake_case starting with a letter (the /metrics dump and the stats CLI
// both key on these strings).
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// registryConstructors are the obs.Registry methods whose first argument
// is a metric name.
var registryConstructors = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "HistogramVec": true,
}

// MetricName validates string literals passed to obs registry
// constructors: they must match ^[a-z][a-z0-9_]*$ and be unique across
// the whole module (two call sites claiming one name would panic at
// runtime when they share a registry, and silently shadow each other
// when they don't). Non-literal names (prefix+"_requests_total") are
// outside the rule's reach and are skipped.
//
// The analyzer keeps module-wide state: construct a fresh instance (via
// Suite or MetricName) per run.
func MetricName() *Analyzer {
	seen := make(map[string]token.Position)
	return &Analyzer{
		Name: "metricname",
		Doc:  "metric names are snake_case and unique module-wide",
		Run: func(pass *Pass) {
			runMetricName(pass, seen)
		},
	}
}

func runMetricName(pass *Pass, seen map[string]token.Position) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			obj := calleeObj(pass.Info, call)
			isCtor := false
			for name := range registryConstructors {
				if isMethodOf(obj, "ecstore/internal/obs", "Registry", name) {
					isCtor = true
					break
				}
			}
			if !isCtor {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !metricNameRE.MatchString(name) {
				pass.Reportf(lit.Pos(), "metric name %q is not lowercase snake_case (want %s)", name, metricNameRE)
				return true
			}
			if first, dup := seen[name]; dup {
				pass.Reportf(lit.Pos(), "metric name %q already registered at %s", name, first)
				return true
			}
			seen[name] = pass.Fset.Position(lit.Pos())
			return true
		})
	}
}
