package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPackages are the layers whose runs must be byte-identical
// given the same seed: the discrete-event simulator, the fault injector,
// the workload generators, the decoded-block cache (whose admission
// sketch and eviction order feed the simulator's results), the codec
// layers gf256/erasure (whose output must not depend on wall clock, the
// global rand source, or map order — stripe sharding may reorder the
// work, never the bytes), the background task scheduler (whose
// admission order must replay identically under the simulator's virtual
// clock), and the multi-tenant gateway (whose token buckets and
// admission decisions must be testable against an injected clock — the
// same refill arithmetic runs under the simulator's open-loop model),
// and the metadata catalog (whose snapshots, WAL records and recovery
// replay must be byte-identical for a given state — a map-order-dependent
// snapshot would break recovery equivalence checks and make compaction
// output unstable). Matched on the final import path segment.
var deterministicPackages = []string{"sim", "faults", "workload", "cache", "gf256", "erasure", "tasks", "gateway", "metadata"}

// randConstructors are the math/rand package functions that build seeded
// generators rather than consuming the global source.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Determinism keeps the simulation layers reproducible:
//
//   - no time.Now/time.Since — simulated time comes from the engine's
//     injected clock;
//   - no global math/rand functions — only seeded *rand.Rand instances
//     (constructors rand.New/rand.NewSource/rand.NewZipf are fine);
//   - no map iteration whose order can reach output: a range over a map
//     is flagged when its body appends, sends on a channel, accumulates
//     a float (float addition is not associative, so iteration order
//     changes the result bits), or calls a non-builtin function. Iterate
//     sorted keys instead, or suppress when provably order-insensitive.
func Determinism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "sim/faults/workload must be reproducible: injected clocks, seeded rand, ordered iteration",
		Run:  runDeterminism,
	}
}

func runDeterminism(pass *Pass) {
	last := pass.LastSegment()
	scoped := false
	for _, p := range deterministicPackages {
		if last == p {
			scoped = true
		}
	}
	if !scoped {
		return
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				obj := calleeObj(pass.Info, n)
				if isPkgFunc(obj, "time", "Now") || isPkgFunc(obj, "time", "Since") || isPkgFunc(obj, "time", "Until") {
					pass.Reportf(n.Pos(), "time.%s in a deterministic package: use the injected clock", obj.Name())
					return true
				}
				if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "math/rand" {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !randConstructors[fn.Name()] {
						pass.Reportf(n.Pos(), "global rand.%s uses the process-wide source: draw from a seeded *rand.Rand", fn.Name())
					}
				}
			case *ast.RangeStmt:
				tv, ok := pass.Info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if isKeyCollection(n) {
					// `for k := range m { keys = append(keys, k) }` is
					// the sanctioned sort-the-keys idiom.
					return true
				}
				if reason, sensitive := orderSensitive(pass.Info, n.Body); sensitive {
					pass.Reportf(n.Pos(), "map iteration order reaches output (%s): iterate sorted keys", reason)
				}
			}
			return true
		})
	}
}

// isKeyCollection matches the sorted-iteration idiom's first half: a
// range whose whole body is `keys = append(keys, k)` with k the range
// key. The collected slice is order-sensitive too, but it exists to be
// sorted; flagging it would force a suppression onto every sanctioned
// fix.
func isKeyCollection(rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || rng.Body == nil || len(rng.Body.List) != 1 {
		return false
	}
	if rng.Value != nil {
		if v, ok := rng.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

// orderSensitive reports whether a map-range body is order-sensitive
// under the rule's heuristics, with a short reason.
func orderSensitive(info *types.Info, body *ast.BlockStmt) (string, bool) {
	var reason string
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			reason = "channel send"
		case *ast.AssignStmt:
			// Compound float accumulation: order changes rounding.
			switch n.Tok.String() {
			case "+=", "-=", "*=", "/=":
				if len(n.Lhs) == 1 {
					if tv, ok := info.Types[n.Lhs[0]]; ok {
						if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
							reason = "float accumulation"
						}
					}
				}
			}
		case *ast.CallExpr:
			obj := calleeObj(info, n)
			if b, ok := obj.(*types.Builtin); ok {
				if b.Name() == "append" {
					reason = "append"
				}
				return true
			}
			if isConversion(info, n) {
				return true
			}
			if obj != nil || calleeSignature(info, n) != nil {
				reason = "call to " + calleeName(obj)
			}
		}
		return reason == ""
	})
	return reason, reason != ""
}

func calleeName(obj types.Object) string {
	if obj == nil {
		return "function value"
	}
	return obj.Name()
}
