// Package lint is ecstore's project-specific static-analysis suite. It
// loads and type-checks the whole module with only the standard library
// (see load.go) and runs analyzers that enforce the invariants the
// codebase's concurrency, context, and determinism layers depend on:
//
//	ctxfirst    context-first APIs; no context.Background outside cmd/examples
//	lockblock   no blocking operations while a sync.Mutex is held, including
//	            one-level interprocedural: calls (across packages) into
//	            functions that directly block are flagged under a held lock
//	goleak      goroutines must be cancelable or tracked; `go f(...)` into a
//	            named module function checks f's body too
//	determinism sim/faults/workload stay seeded and order-stable
//	errwrap     %w wrapping and errors.Is for sentinels
//	metricname  metric names are well-formed and unique module-wide
//	lockorder   the module-wide mutex-acquisition-order graph (propagated
//	            through calls made while a lock is held) must be acyclic;
//	            cycles are reported with the full acquisition path
//	poolbalance values from sync.Pool.Get and the project pool helpers
//	            (erasure.EncodePooled, getBuf, AcquireBuffer, ...) must
//	            reach a matching Put/Release on every path, defer included
//
// The interprocedural rules share a module-wide call graph (callgraph.go)
// built from the same go/types load: static calls resolve to their one
// declared callee, interface calls to every module implementation.
//
// A finding is suppressed by a directive comment
//
//	//lint:ignore <rule> <reason>
//
// placed on the finding's line, the line above it, or in the doc comment
// of the enclosing top-level declaration (which suppresses the rule for
// the whole declaration). The reason is mandatory.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one lint rule. Run inspects a single package and reports
// findings through the pass; analyzers observe packages in sorted import
// path order, so module-wide state (metricname's uniqueness map) is
// deterministic. RunModule, if set, runs once per suite invocation after
// every per-package pass, with access to the whole loaded module and its
// call graph — the interprocedural rules (lockorder) live there. An
// analyzer may set either hook or both.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass carries one package through one analyzer. Mod exposes the
// whole-run module state (all loaded packages plus the lazily built
// call graph) so per-package rules can resolve cross-package callees.
type Pass struct {
	*Package
	Fset *token.FileSet
	Mod  *Module

	rule   string
	report func(Diagnostic)
}

// ModulePass carries the whole module through one module-level
// analyzer. Diagnostics may land in any loaded package; suppressions
// apply exactly as they do for per-package passes.
type ModulePass struct {
	Mod  *Module
	Fset *token.FileSet

	rule   string
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Segments returns the package path split on '/'; analyzers use it to
// scope rules to parts of the tree ("cmd", "examples", "storage", ...).
func (p *Pass) Segments() []string { return strings.Split(p.Path, "/") }

// HasSegment reports whether any path segment equals one of names.
func (p *Pass) HasSegment(names ...string) bool {
	for _, seg := range p.Segments() {
		for _, n := range names {
			if seg == n {
				return true
			}
		}
	}
	return false
}

// LastSegment returns the final package path segment.
func (p *Pass) LastSegment() string {
	segs := p.Segments()
	return segs[len(segs)-1]
}

// Suite returns a fresh instance of every analyzer. Instances hold
// module-wide state (metricname), so each Run of the suite needs its own.
func Suite() []*Analyzer {
	return []*Analyzer{
		CtxFirst(),
		LockBlock(),
		GoLeak(),
		Determinism(),
		ErrWrap(),
		MetricName(),
		LockOrder(),
		PoolBalance(),
	}
}

// ByName filters analyzers to the named rules; unknown names error.
func ByName(analyzers []*Analyzer, names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to the packages, drops suppressed findings,
// and returns the rest sorted by position. Per-package hooks run first
// (packages in sorted import-path order), then each analyzer's module
// hook runs once over the whole set. Malformed //lint:ignore directives
// (missing rule or reason) are themselves reported under the "ignore"
// pseudo-rule.
func Run(fset *token.FileSet, analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	mod := NewModule(fset, pkgs)
	sup := &suppressions{
		lines: make(map[string]map[int][]string),
		decls: make(map[string][]declRange),
	}
	for _, pkg := range pkgs {
		sup.collect(fset, pkg)
	}
	diags = append(diags, sup.malformed...)
	report := func(d Diagnostic) {
		if !sup.covers(d) {
			diags = append(diags, d)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			a.Run(&Pass{
				Package: pkg,
				Fset:    fset,
				Mod:     mod,
				rule:    a.Name,
				report:  report,
			})
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		a.RunModule(&ModulePass{
			Mod:    mod,
			Fset:   fset,
			rule:   a.Name,
			report: report,
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// suppressions indexes //lint:ignore directives across the loaded
// packages (module rules may report in any of them).
type suppressions struct {
	// lines maps file name -> line -> suppressed rule names.
	lines map[string]map[int][]string
	// decls maps file name -> [start line, end line] ranges per rule,
	// from directives in top-level declaration doc comments.
	decls     map[string][]declRange
	malformed []Diagnostic
}

type declRange struct {
	rule       string
	start, end int
}

const ignoreDirective = "//lint:ignore"

// collect indexes one package's directives into s.
func (s *suppressions) collect(fset *token.FileSet, pkg *Package) {
	for _, f := range pkg.Files {
		fname := fset.Position(f.Pos()).Filename

		// Doc-comment directives scope to the whole declaration.
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				// Malformed reporting happens in the comment loop below,
				// which sees every comment (including doc comments).
				rule, ok := s.parse(fset, c, false)
				if !ok {
					continue
				}
				s.decls[fname] = append(s.decls[fname], declRange{
					rule:  rule,
					start: fset.Position(decl.Pos()).Line,
					end:   fset.Position(decl.End()).Line,
				})
			}
		}

		// Every other directive suppresses its own line and the next.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rule, ok := s.parse(fset, c, true)
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				if s.lines[fname] == nil {
					s.lines[fname] = make(map[int][]string)
				}
				s.lines[fname][line] = append(s.lines[fname][line], rule)
				s.lines[fname][line+1] = append(s.lines[fname][line+1], rule)
			}
		}
	}
}

// parse extracts the rule from one directive comment, reporting
// malformed directives when report is set. The second return is false
// for non-directives and malformed ones alike.
func (s *suppressions) parse(fset *token.FileSet, c *ast.Comment, report bool) (string, bool) {
	rule, ok, malformed := parseIgnoreDirective(c.Text)
	if malformed && report {
		s.malformed = append(s.malformed, Diagnostic{
			Pos:     fset.Position(c.Pos()),
			Rule:    "ignore",
			Message: "malformed directive: want //lint:ignore <rule> <reason>",
		})
	}
	return rule, ok
}

// parseIgnoreDirective parses one comment's text as a //lint:ignore
// directive. ok means a well-formed directive (rule and a reason
// present); malformed means the comment is the directive but is missing
// the rule or the reason. Prose that merely starts with the letters
// ("//lint:ignored below") is neither: the directive token must be
// followed by whitespace.
func parseIgnoreDirective(text string) (rule string, ok, malformed bool) {
	if !strings.HasPrefix(text, ignoreDirective) {
		return "", false, false
	}
	rest := strings.TrimPrefix(text, ignoreDirective)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", false, true
	}
	return fields[0], true, false
}

func (s *suppressions) covers(d Diagnostic) bool {
	for _, rule := range s.lines[d.Pos.Filename][d.Pos.Line] {
		if rule == d.Rule {
			return true
		}
	}
	for _, dr := range s.decls[d.Pos.Filename] {
		if dr.rule == d.Rule && d.Pos.Line >= dr.start && d.Pos.Line <= dr.end {
			return true
		}
	}
	return false
}
