package lint

import (
	"go/ast"
	"go/types"
)

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// firstParamIsContext reports whether sig's first parameter is a
// context.Context.
func firstParamIsContext(sig *types.Signature) bool {
	return sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

// hasContextParam reports whether any parameter of sig is a
// context.Context, and its index.
func hasContextParam(sig *types.Signature) (int, bool) {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i, true
		}
	}
	return -1, false
}

// calleeObj resolves the object a call expression invokes: a *types.Func
// for functions and methods, a *types.Builtin for builtins, nil for
// indirect calls through function values and for type conversions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call
	}
	return nil
}

// isPkgFunc reports whether obj is the function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// isConversion reports whether call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// calleeSignature returns the static signature of the called function,
// or nil for conversions and builtins.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	if isConversion(info, call) {
		return nil
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// isMethodOf reports whether obj is a method named name whose receiver's
// named type is pkgPath.typeName (through pointers).
func isMethodOf(obj types.Object, pkgPath, typeName, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == typeName && o.Pkg() != nil && o.Pkg().Path() == pkgPath
}

// walkShallow walks node in source order but does not descend into
// GoStmt operands or FuncLit bodies: work launched asynchronously or
// deferred into a closure does not block the enclosing function.
func walkShallow(node ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			if n != node {
				return false
			}
		}
		return visit(n)
	})
}
