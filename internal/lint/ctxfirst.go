package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ioPackages are the context-threaded layers: every I/O-capable exported
// function there must take a context.Context first. Matching is on the
// final import path segment so the rule also applies to testdata
// fixtures laid out under a directory of the same name.
var ioPackages = []string{"storage", "rpc", "core", "repair", "metadata", "stats", "transport"}

// lifecycleNames are teardown/lifecycle methods that legitimately block
// without a caller context (they are bounded by the component's own
// shutdown protocol, not by a request).
var lifecycleNames = map[string]bool{
	"Close": true, "Stop": true, "Wait": true, "Shutdown": true, "Flush": true,
}

// CtxFirst enforces the context plumbing invariants established by the
// fault-tolerance layer:
//
//  1. A function with a context.Context parameter takes it first.
//  2. context.Background()/context.TODO() appear only under cmd/ and
//     examples/ (and tests, which are not linted): library code must use
//     the caller's context, deriving detached lifetimes with
//     context.WithoutCancel.
//  3. In the I/O packages, an exported function that blocks (calls a
//     context-taking function, performs channel operations, selects, or
//     sleeps) must itself take a context.Context first. Lifecycle
//     methods (Close, Stop, Wait, Shutdown, Flush) are exempt.
func CtxFirst() *Analyzer {
	return &Analyzer{
		Name: "ctxfirst",
		Doc:  "context.Context-first APIs; no context.Background in library paths",
		Run:  runCtxFirst,
	}
}

func runCtxFirst(pass *Pass) {
	mainAllowed := pass.HasSegment("cmd", "examples")
	ioScoped := false
	last := pass.LastSegment()
	for _, p := range ioPackages {
		if last == p {
			ioScoped = true
		}
	}

	for _, f := range pass.Files {
		// Rule 2: no ambient contexts outside program entry points.
		if !mainAllowed {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeObj(pass.Info, call)
				if isPkgFunc(obj, "context", "Background") || isPkgFunc(obj, "context", "TODO") {
					pass.Reportf(call.Pos(), "context.%s in library code: accept the caller's context (derive detached lifetimes with context.WithoutCancel)", obj.Name())
				}
				return true
			})
		}

		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			sig := obj.Type().(*types.Signature)

			// Rule 1: a context parameter must come first.
			if idx, ok := hasContextParam(sig); ok && idx != 0 {
				pass.Reportf(fd.Name.Pos(), "%s takes context.Context as parameter %d: context must be the first parameter", fd.Name.Name, idx+1)
				continue
			}

			// Rule 3: exported blocking functions in I/O packages.
			if !ioScoped || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			if _, ok := hasContextParam(sig); ok || lifecycleNames[fd.Name.Name] {
				continue
			}
			if pos, blocks := firstBlockingOp(pass.Info, fd.Body); blocks {
				pass.Reportf(fd.Name.Pos(), "exported function %s performs blocking I/O (%s) but takes no context.Context; add one as the first parameter", fd.Name.Name, pass.Fset.Position(pos))
			}
		}
	}
}

// firstBlockingOp finds the first operation in body that can block the
// calling goroutine: a call into a context-taking API, a channel send or
// receive, a select, or time.Sleep. Goroutine launches and closure
// definitions do not block and are not descended into.
func firstBlockingOp(info *types.Info, body *ast.BlockStmt) (token.Pos, bool) {
	var found ast.Node
	walkShallow(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = n
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = n
			}
		case *ast.CallExpr:
			obj := calleeObj(info, n)
			if isPkgFunc(obj, "time", "Sleep") {
				found = n
				return false
			}
			// A callee taking a context first is the marker for network
			// and storage I/O; the context package's own constructors
			// obviously do not count.
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
				return true
			}
			if sig := calleeSignature(info, n); sig != nil && firstParamIsContext(sig) {
				found = n
				return false
			}
		}
		return found == nil
	})
	if found == nil {
		return 0, false
	}
	return found.Pos(), true
}
