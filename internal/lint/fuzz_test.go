package lint

import (
	"strings"
	"testing"
)

// FuzzIgnoreDirective fuzzes the //lint:ignore parser with arbitrary
// comment text and checks its invariants: the three outcomes
// (not-a-directive, well-formed, malformed) are mutually exclusive, a
// parsed rule is the first whitespace-separated token after the
// directive, and prose that merely shares the prefix letters is never
// treated as a directive.
func FuzzIgnoreDirective(f *testing.F) {
	f.Add("//lint:ignore lockorder fixture: instances are address-ordered")
	f.Add("//lint:ignore goleak")
	f.Add("//lint:ignore")
	f.Add("//lint:ignored below, see the design doc")
	f.Add("// plain comment")
	f.Add("//lint:ignore\tpoolbalance\ttab separated reason")
	f.Add("//lint:ignore  two   spaces   everywhere ")
	f.Add("//lint:ignore   nbsp is not a separator")
	f.Fuzz(func(t *testing.T, text string) {
		rule, ok, malformed := parseIgnoreDirective(text)
		if ok && malformed {
			t.Fatalf("%q: ok and malformed are mutually exclusive", text)
		}
		if !strings.HasPrefix(text, ignoreDirective) {
			if ok || malformed {
				t.Fatalf("%q: no directive prefix but parsed as one", text)
			}
			return
		}
		rest := strings.TrimPrefix(text, ignoreDirective)
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			// "//lint:ignoredX..." prose: neither a directive nor malformed.
			if ok || malformed || rule != "" {
				t.Fatalf("%q: prose sharing the prefix treated as a directive", text)
			}
			return
		}
		fields := strings.Fields(rest)
		switch {
		case len(fields) >= 2:
			if !ok || rule != fields[0] {
				t.Fatalf("%q: want ok with rule %q, got ok=%v rule=%q", text, fields[0], ok, rule)
			}
		default:
			if !malformed || rule != "" {
				t.Fatalf("%q: directive missing rule/reason must be malformed, got ok=%v malformed=%v rule=%q",
					text, ok, malformed, rule)
			}
		}
	})
}
