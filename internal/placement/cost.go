// Package placement implements EC-Store's primary contribution: the
// cost-model-driven data access strategy (Section IV-B, Equations 1-4), the
// plan cache with greedy fallback and background exact solves (Section
// V-B1), late binding integration (Section IV-B1), and the chunk movement
// strategy (Sections IV-C and IV-D, Equations 5-8 and Algorithm 1).
package placement

import (
	"math"
	"sort"

	"ecstore/internal/model"
)

// PlanCost evaluates Equation 1 for a concrete access plan:
//
//	cost(Q) = Σ_j ( o_j·a_j + Σ_{Bi∈Q} s_ij·m_j·z_i )
//
// metas supplies z_i (chunk sizes) per block; costs supplies o_j and m_j.
func PlanCost(plan *model.AccessPlan, metas map[model.BlockID]*model.BlockMeta, costs *model.SiteCosts) float64 {
	var total float64
	for site, refs := range plan.Reads {
		if len(refs) == 0 {
			continue
		}
		total += costs.OCost(site)
		m := costs.MCost(site)
		for _, ref := range refs {
			meta := metas[ref.Block]
			if meta == nil {
				continue
			}
			total += m * float64(meta.ChunkSize)
		}
	}
	return total
}

// ValidatePlan checks the paper's feasibility constraints: every requested
// block has at least RequiredChunks()+delta distinct chunks selected, every
// selected chunk actually exists at the chosen site, and no chunk is
// selected twice.
func ValidatePlan(plan *model.AccessPlan, metas map[model.BlockID]*model.BlockMeta, delta int) error {
	selected := make(map[model.ChunkRef]bool)
	perBlock := make(map[model.BlockID]int, len(metas))
	for site, refs := range plan.Reads {
		for _, ref := range refs {
			meta := metas[ref.Block]
			if meta == nil {
				return &PlanError{Ref: ref, Reason: "block not in request"}
			}
			if ref.Chunk < 0 || ref.Chunk >= len(meta.Sites) {
				return &PlanError{Ref: ref, Reason: "chunk id out of range"}
			}
			if meta.Sites[ref.Chunk] != site {
				return &PlanError{Ref: ref, Reason: "chunk not stored at selected site"}
			}
			if selected[ref] {
				return &PlanError{Ref: ref, Reason: "chunk selected twice"}
			}
			selected[ref] = true
			perBlock[ref.Block]++
		}
	}
	for id, meta := range metas {
		need := meta.RequiredChunks() + delta
		if avail := meta.TotalChunks(); need > avail {
			need = avail
		}
		if perBlock[id] < need {
			return &PlanError{
				Ref:    model.ChunkRef{Block: id},
				Reason: "not enough chunks selected",
			}
		}
	}
	return nil
}

// PlanError describes an invalid access plan.
type PlanError struct {
	Ref    model.ChunkRef
	Reason string
}

func (e *PlanError) Error() string {
	return "placement: invalid plan at " + e.Ref.String() + ": " + e.Reason
}

// candidate is one selectable chunk of one block.
type candidate struct {
	ref  model.ChunkRef
	site model.SiteID
}

// requestCandidates lists, per block, the chunks that exist on available
// sites. Blocks are returned in sorted id order for determinism.
type requestCandidates struct {
	blocks []model.BlockID
	metas  map[model.BlockID]*model.BlockMeta
	cands  map[model.BlockID][]candidate
	sites  []model.SiteID // union of candidate sites, sorted
}

func buildCandidates(metas map[model.BlockID]*model.BlockMeta, available func(model.SiteID) bool) *requestCandidates {
	rc := &requestCandidates{
		metas: metas,
		cands: make(map[model.BlockID][]candidate, len(metas)),
	}
	siteSet := make(map[model.SiteID]bool)
	for id := range metas {
		rc.blocks = append(rc.blocks, id)
	}
	sort.Slice(rc.blocks, func(i, j int) bool { return rc.blocks[i] < rc.blocks[j] })
	for _, id := range rc.blocks {
		meta := metas[id]
		for chunk, site := range meta.Sites {
			if site == model.NoSite {
				continue
			}
			if available != nil && !available(site) {
				continue
			}
			rc.cands[id] = append(rc.cands[id], candidate{
				ref:  model.ChunkRef{Block: id, Chunk: chunk},
				site: site,
			})
			siteSet[site] = true
		}
	}
	rc.sites = make([]model.SiteID, 0, len(siteSet))
	for s := range siteSet {
		rc.sites = append(rc.sites, s)
	}
	sort.Slice(rc.sites, func(i, j int) bool { return rc.sites[i] < rc.sites[j] })
	return rc
}

// need returns the chunk count to fetch for a block: k+delta capped at the
// number of available candidates.
func (rc *requestCandidates) need(id model.BlockID, delta int) int {
	meta := rc.metas[id]
	need := meta.RequiredChunks() + delta
	if n := len(rc.cands[id]); need > n {
		need = n
	}
	return need
}

// feasible reports whether every block can still be reconstructed (at least
// RequiredChunks candidates remain available).
func (rc *requestCandidates) feasible() bool {
	for _, id := range rc.blocks {
		if len(rc.cands[id]) < rc.metas[id].RequiredChunks() {
			return false
		}
	}
	return true
}

// bruteForceMaxSites bounds the exhaustive site-subset search used for
// exact cost estimates on small queries (the mover's two-block queries
// touch at most 2·(k+r) sites).
const bruteForceMaxSites = 14

// ExactCost computes cost(C, Q) of Equation 4 exactly when the candidate
// site set is small, by enumerating accessed-site subsets and assigning
// each block its cheapest chunks within the subset. For larger instances it
// falls back to the greedy planner's cost. The second return value reports
// whether the result is exact.
func ExactCost(metas map[model.BlockID]*model.BlockMeta, costs *model.SiteCosts, available func(model.SiteID) bool, delta int) (float64, bool) {
	rc := buildCandidates(metas, available)
	if !rc.feasible() {
		return math.Inf(1), true
	}
	if len(rc.sites) > bruteForceMaxSites {
		plan := greedyPlan(rc, costs, delta, nil)
		return PlanCost(plan, metas, costs), false
	}

	// Flatten to index-based arrays so the 2^n mask loop stays tight:
	// the mover evaluates thousands of two-block queries per round.
	n := len(rc.sites)
	oCost := make([]float64, n)
	siteIdx := make(map[model.SiteID]int, n)
	for i, s := range rc.sites {
		oCost[i] = costs.OCost(s)
		siteIdx[s] = i
	}
	type flatBlock struct {
		need      int
		candSite  []int     // site index per candidate chunk
		candCost  []float64 // m_j * z_i per candidate chunk
	}
	blocks := make([]flatBlock, 0, len(rc.blocks))
	for _, id := range rc.blocks {
		fb := flatBlock{need: rc.need(id, delta)}
		for _, c := range rc.cands[id] {
			fb.candSite = append(fb.candSite, siteIdx[c.site])
			fb.candCost = append(fb.candCost, costs.MCost(c.site)*float64(rc.metas[id].ChunkSize))
		}
		// Sort candidates by cost once so per-mask selection is a
		// single in-order scan.
		sort.Sort(&candSorter{sites: fb.candSite, costs: fb.candCost})
		blocks = append(blocks, fb)
	}

	best := math.Inf(1)
	for mask := 1; mask < 1<<n; mask++ {
		var cost float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cost += oCost[i]
			}
		}
		if cost >= best {
			continue
		}
		ok := true
		for bi := range blocks {
			fb := &blocks[bi]
			taken := 0
			for ci := 0; ci < len(fb.candSite) && taken < fb.need; ci++ {
				if mask&(1<<fb.candSite[ci]) != 0 {
					cost += fb.candCost[ci]
					taken++
				}
			}
			if taken < fb.need || cost >= best {
				ok = false
				break
			}
		}
		if ok {
			best = cost
		}
	}
	return best, true
}

// candSorter sorts parallel candidate arrays by ascending cost.
type candSorter struct {
	sites []int
	costs []float64
}

func (s *candSorter) Len() int           { return len(s.sites) }
func (s *candSorter) Less(i, j int) bool { return s.costs[i] < s.costs[j] }
func (s *candSorter) Swap(i, j int) {
	s.sites[i], s.sites[j] = s.sites[j], s.sites[i]
	s.costs[i], s.costs[j] = s.costs[j], s.costs[i]
}
