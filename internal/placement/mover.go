package placement

import (
	"math/rand"

	"ecstore/internal/model"
	"ecstore/internal/stats"
)

// CatalogView is the mover's read-only view of system state C (chunk
// placements). The metadata catalog implements it.
type CatalogView interface {
	// BlockMeta returns the metadata of a block, or false if unknown.
	BlockMeta(id model.BlockID) (*model.BlockMeta, bool)
	// Sites lists every site in the system (available or not).
	Sites() []model.SiteID
}

// MoverConfig parameterizes the movement strategy.
type MoverConfig struct {
	// W1 weights the expected change in data access cost E (Eq. 5) and
	// W2 the expected change in load balance I (Eq. 7); the paper found
	// (w1=1, w2=3) best after a parameter search (Section V-B3).
	W1 float64
	W2 float64
	// MaxCandidateBlocks bounds Algorithm 1's candidate set; 0 means 16.
	MaxCandidateBlocks int
	// MaxPartners bounds the historical co-access queries per block used
	// by Equation 5; 0 means 8.
	MaxPartners int
	// MaxDestinations bounds candidate destination sites per chunk;
	// 0 means 8.
	MaxDestinations int
	// MaxEvaluations is Algorithm 1's early-stopping budget: the search
	// halts after scoring this many plans; 0 means 256.
	MaxEvaluations int
	// W2Adaptive scales W2 by the average o_j of the current cost
	// model, mirroring the paper's calibration of w2 against avg(o_j)
	// (initially w2 = avg(o_j), tuned to 0.6*avg(o_j)). Use this when
	// o_j is measured in seconds rather than normalized units.
	W2Adaptive bool
	// MinScoreFracOfAvgO suppresses movements whose Δ is below this
	// fraction of the average o_j: near-zero-gain moves churn data and
	// oscillate around converged layouts without improving anything.
	MinScoreFracOfAvgO float64
	// Seed drives candidate sampling.
	Seed int64
}

func (c MoverConfig) withDefaults() MoverConfig {
	if c.W1 == 0 && c.W2 == 0 {
		c.W1, c.W2 = DefaultW1, DefaultW2
	}
	if c.MaxCandidateBlocks == 0 {
		c.MaxCandidateBlocks = 16
	}
	if c.MaxPartners == 0 {
		c.MaxPartners = 8
	}
	if c.MaxDestinations == 0 {
		c.MaxDestinations = 8
	}
	if c.MaxEvaluations == 0 {
		c.MaxEvaluations = 256
	}
	return c
}

// Default movement weights (Section V-B3: empirically w1=1, w2=3).
const (
	DefaultW1 = 1.0
	DefaultW2 = 3.0
)

// MoverEnv carries the live system signals the mover consumes.
type MoverEnv struct {
	Catalog  CatalogView
	CoAccess *stats.CoAccessTracker
	Loads    *stats.LoadTracker
	Costs    *model.SiteCosts
	// Available filters failed sites from destination consideration;
	// nil means all sites are available.
	Available func(model.SiteID) bool
	// RequestRate is the observed request arrival rate (requests per
	// second) used to translate block access frequency into an I/O rate
	// for load shifting.
	RequestRate float64
}

// Mover selects chunk movement plans per Algorithm 1.
type Mover struct {
	cfg MoverConfig
	rng *rand.Rand
}

// NewMover returns a mover with the given configuration.
func NewMover(cfg MoverConfig) *Mover {
	cfg = cfg.withDefaults()
	return &Mover{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// blockContext caches the destination-independent parts of Equation 5 for
// one candidate block: its co-access partners, their metadata, and the
// before-movement query costs cost(C, {B_b, B_i}).
type blockContext struct {
	meta     *model.BlockMeta
	partners []partnerCost
	// freq backs the singleton fallback when no co-access exists.
	freq float64
}

type partnerCost struct {
	meta   *model.BlockMeta // nil for the singleton query {B_b}
	lambda float64
	before float64
}

// blockContext builds the cached context for one block.
func (m *Mover) blockContext(env MoverEnv, meta *model.BlockMeta) *blockContext {
	ctx := &blockContext{meta: meta, freq: env.CoAccess.Frequency(meta.ID)}
	partners := env.CoAccess.Partners(meta.ID, m.cfg.MaxPartners)
	for _, p := range partners {
		pm, ok := env.Catalog.BlockMeta(p.Block)
		if !ok || pm.ID == meta.ID {
			continue
		}
		before, _ := ExactCost(map[model.BlockID]*model.BlockMeta{meta.ID: meta, pm.ID: pm}, env.Costs, env.Available, 0)
		ctx.partners = append(ctx.partners, partnerCost{meta: pm, lambda: p.Lambda, before: before})
	}
	if len(ctx.partners) == 0 {
		before, _ := ExactCost(map[model.BlockID]*model.BlockMeta{meta.ID: meta}, env.Costs, env.Available, 0)
		ctx.partners = append(ctx.partners, partnerCost{lambda: ctx.freq, before: before})
	}
	return ctx
}

// accessGain evaluates E(C, b, s, d) for one (chunk, destination) pair
// against the cached context.
func (m *Mover) accessGain(env MoverEnv, ctx *blockContext, chunk int, dst model.SiteID) float64 {
	moved := ctx.meta.Clone()
	moved.Sites[chunk] = dst
	var gain float64
	for i := range ctx.partners {
		p := &ctx.partners[i]
		after := map[model.BlockID]*model.BlockMeta{moved.ID: moved}
		if p.meta != nil {
			after[p.meta.ID] = p.meta
		}
		costAfter, _ := ExactCost(after, env.Costs, env.Available, 0)
		gain += (p.before - costAfter) * p.lambda
	}
	return gain
}

// AccessGain computes E(C, b, s, d) of Equation 5: the co-access-weighted
// change in access cost over historical two-block queries {B_b, B_i} when
// B_b's chunk moves from site s to site d.
func (m *Mover) AccessGain(env MoverEnv, meta *model.BlockMeta, chunk int, dst model.SiteID) float64 {
	return m.accessGain(env, m.blockContext(env, meta), chunk, dst)
}

// LoadGain computes I(C, b, s, d) of Equation 7 for moving one chunk of
// the block from src to dst, shifting load proportionally to chunk size
// and access likelihood (Section IV-C, "Quantifying System Load").
func (m *Mover) LoadGain(env MoverEnv, meta *model.BlockMeta, src, dst model.SiteID) float64 {
	freq := env.CoAccess.Frequency(meta.ID)
	chunkRate := freq * env.RequestRate * float64(meta.ChunkSize)
	share := env.Loads.LoadShare(src, chunkRate)
	shift := env.Loads.Omega(src) * share
	return env.Loads.ImbalanceGain(src, dst, shift)
}

// avgO returns the mean o_j of the current cost model.
func avgO(env MoverEnv) float64 {
	avg := env.Costs.DefaultO
	if len(env.Costs.O) > 0 {
		var sum float64
		for _, v := range env.Costs.O {
			sum += v
		}
		avg = sum / float64(len(env.Costs.O))
	}
	return avg
}

// effectiveW2 resolves the load-balance weight, optionally scaled by the
// current average o_j (W2Adaptive).
func (m *Mover) effectiveW2(env MoverEnv) float64 {
	if !m.cfg.W2Adaptive {
		return m.cfg.W2
	}
	return m.cfg.W2 * avgO(env)
}

// Score computes Δ(C, b, s, d) = w1·E + w2·I (Equation 8).
func (m *Mover) Score(env MoverEnv, meta *model.BlockMeta, chunk int, src, dst model.SiteID) float64 {
	e := m.AccessGain(env, meta, chunk, dst)
	i := m.LoadGain(env, meta, src, dst)
	return m.cfg.W1*e + m.effectiveW2(env)*i
}

// SelectMovementPlan runs Algorithm 1: probabilistically gather candidate
// blocks (recent and frequent), iterate their chunks ordered by source
// site load (most loaded first), score candidate destinations, and return
// the best-scoring plan. The boolean result is false when no plan has a
// positive score.
func (m *Mover) SelectMovementPlan(env MoverEnv) (model.MovePlan, bool) {
	blocks := env.CoAccess.CandidateBlocks(m.cfg.MaxCandidateBlocks, m.rng)
	if len(blocks) == 0 {
		return model.MovePlan{}, false
	}

	siteLoadRank := make(map[model.SiteID]int)
	for rank, s := range env.Loads.SitesByLoadDesc() {
		siteLoadRank[s] = rank
	}

	best := model.MovePlan{Score: m.cfg.MinScoreFracOfAvgO * avgO(env)}
	found := false
	evals := 0
	w2 := m.effectiveW2(env)

	for _, id := range blocks {
		meta, ok := env.Catalog.BlockMeta(id)
		if !ok {
			continue
		}
		dests := m.candidateDestinations(env, meta)
		if len(dests) == 0 {
			continue
		}
		ctx := m.blockContext(env, meta)
		// Order this block's chunks by the load of their current site,
		// most loaded first (Algorithm 1 line 5 note).
		chunks := make([]int, 0, len(meta.Sites))
		for c := range meta.Sites {
			if meta.Sites[c] != model.NoSite {
				chunks = append(chunks, c)
			}
		}
		for i := 1; i < len(chunks); i++ {
			for j := i; j > 0; j-- {
				a, b := chunks[j-1], chunks[j]
				if siteLoadRank[meta.Sites[b]] < siteLoadRank[meta.Sites[a]] {
					chunks[j-1], chunks[j] = b, a
				}
			}
		}

		for _, chunk := range chunks {
			src := meta.Sites[chunk]
			for _, dst := range dests {
				score := m.cfg.W1*m.accessGain(env, ctx, chunk, dst) +
					w2*m.LoadGain(env, meta, src, dst)
				evals++
				if score > best.Score {
					best = model.MovePlan{Block: id, Chunk: chunk, From: src, To: dst, Score: score}
					found = true
				}
				if evals >= m.cfg.MaxEvaluations {
					return best, found
				}
			}
		}
	}
	return best, found
}

// candidateDestinations lists available sites that hold no chunk of the
// block (preserving r-fault tolerance), ordered from least to most loaded
// so the greedy search sees the most promising destinations first.
func (m *Mover) candidateDestinations(env MoverEnv, meta *model.BlockMeta) []model.SiteID {
	holding := meta.SiteSet()
	byLoad := env.Loads.SitesByLoadDesc()
	dests := make([]model.SiteID, 0, m.cfg.MaxDestinations)
	for i := len(byLoad) - 1; i >= 0 && len(dests) < m.cfg.MaxDestinations; i-- {
		s := byLoad[i]
		if holding[s] {
			continue
		}
		if env.Available != nil && !env.Available(s) {
			continue
		}
		dests = append(dests, s)
	}
	return dests
}
