package placement

import (
	"testing"

	"ecstore/internal/model"
)

func twoBlockRequest() map[model.BlockID]*model.BlockMeta {
	return map[model.BlockID]*model.BlockMeta{
		"a": makeMeta("a", 2, 2, 100, 1, 2, 3, 4),
		"b": makeMeta("b", 2, 2, 100, 3, 4, 5, 6),
	}
}

func TestPlannerCacheMissThenHit(t *testing.T) {
	p := NewPlanner(PlannerConfig{Strategy: StrategyCost, InlineExact: true, Seed: 1})
	defer p.Close()
	costs := uniformCosts(5, 0.001)
	metas := twoBlockRequest()

	plan1, src1, err := p.Plan(PlanRequest{Metas: metas}, costs)
	if err != nil {
		t.Fatal(err)
	}
	if src1 != SourceGreedy {
		t.Fatalf("first plan source = %v, want greedy", src1)
	}
	if err := ValidatePlan(plan1, metas, 0); err != nil {
		t.Fatal(err)
	}

	plan2, src2, err := p.Plan(PlanRequest{Metas: metas}, costs)
	if err != nil {
		t.Fatal(err)
	}
	if src2 != SourceCache {
		t.Fatalf("second plan source = %v, want cache", src2)
	}
	// With InlineExact the cached plan is the ILP solution.
	want, _ := ExactCost(metas, costs, nil, 0)
	if got := PlanCost(plan2, metas, costs); got > want+1e-6 {
		t.Fatalf("cached plan cost %v > optimal %v", got, want)
	}

	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Exact != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate())
	}
}

func TestPlannerVersionChangeInvalidates(t *testing.T) {
	p := NewPlanner(PlannerConfig{Strategy: StrategyCost, InlineExact: true, Seed: 1})
	defer p.Close()
	costs := uniformCosts(5, 0.001)
	metas := twoBlockRequest()

	if _, _, err := p.Plan(PlanRequest{Metas: metas}, costs); err != nil {
		t.Fatal(err)
	}
	// A chunk movement bumps the version; the old cached plan must not
	// be served for the new placement.
	metas["a"] = metas["a"].Clone()
	metas["a"].Sites[0] = 6
	metas["a"].Version++
	_, src, err := p.Plan(PlanRequest{Metas: metas}, costs)
	if err != nil {
		t.Fatal(err)
	}
	if src == SourceCache {
		t.Fatal("stale plan served after placement change")
	}
}

func TestPlannerCachedPlanRevalidatedOnFailure(t *testing.T) {
	p := NewPlanner(PlannerConfig{Strategy: StrategyCost, InlineExact: true, Seed: 1})
	defer p.Close()
	costs := uniformCosts(5, 0.001)
	metas := twoBlockRequest()

	if _, _, err := p.Plan(PlanRequest{Metas: metas}, costs); err != nil {
		t.Fatal(err)
	}
	// Pull the cached plan once to learn which sites it uses.
	cached, src, err := p.Plan(PlanRequest{Metas: metas}, costs)
	if err != nil || src != SourceCache {
		t.Fatalf("expected cache hit, got %v err %v", src, err)
	}
	deadSite := cached.SortedSites()[0]
	avail := func(s model.SiteID) bool { return s != deadSite }

	plan, src, err := p.Plan(PlanRequest{Metas: metas, Available: avail}, costs)
	if err != nil {
		t.Fatal(err)
	}
	if src == SourceCache {
		t.Fatal("cache served a plan referencing a failed site")
	}
	if _, uses := plan.Reads[deadSite]; uses {
		t.Fatal("new plan uses the failed site")
	}
}

func TestPlannerRandomStrategy(t *testing.T) {
	p := NewPlanner(PlannerConfig{Strategy: StrategyRandom, Seed: 1})
	defer p.Close()
	metas := twoBlockRequest()
	plan, src, err := p.Plan(PlanRequest{Metas: metas}, uniformCosts(5, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceRandom {
		t.Fatalf("source = %v, want random", src)
	}
	if err := ValidatePlan(plan, metas, 0); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Random; got != 1 {
		t.Fatalf("random counter = %d", got)
	}
}

func TestPlannerBackgroundSolve(t *testing.T) {
	p := NewPlanner(PlannerConfig{Strategy: StrategyCost, InlineExact: false, Seed: 1})
	costs := uniformCosts(5, 0.001)
	metas := twoBlockRequest()
	if _, _, err := p.Plan(PlanRequest{Metas: metas}, costs); err != nil {
		t.Fatal(err)
	}
	p.Close() // waits for the background ILP solve
	_, src, err := p.Plan(PlanRequest{Metas: metas}, costs)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceCache {
		t.Fatalf("after background solve source = %v, want cache", src)
	}
}

func TestPlannerDeltaAppliedFromConfig(t *testing.T) {
	p := NewPlanner(PlannerConfig{Strategy: StrategyCost, Delta: 1, InlineExact: true, Seed: 1})
	defer p.Close()
	metas := twoBlockRequest()
	plan, _, err := p.Plan(PlanRequest{Metas: metas}, uniformCosts(5, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.ChunksFor("a"); got != 3 {
		t.Fatalf("late-binding plan fetches %d chunks for a, want 3", got)
	}
}

func TestPlannerCacheEviction(t *testing.T) {
	p := NewPlanner(PlannerConfig{Strategy: StrategyCost, InlineExact: true, CacheSize: 1, Seed: 1})
	defer p.Close()
	costs := uniformCosts(5, 0.001)

	metasA := map[model.BlockID]*model.BlockMeta{"a": makeMeta("a", 2, 2, 100, 1, 2, 3, 4)}
	metasB := map[model.BlockID]*model.BlockMeta{"b": makeMeta("b", 2, 2, 100, 1, 2, 3, 4)}

	if _, _, err := p.Plan(PlanRequest{Metas: metasA}, costs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Plan(PlanRequest{Metas: metasB}, costs); err != nil {
		t.Fatal(err)
	}
	// metasA's entry was evicted by metasB (cache size 1).
	_, src, err := p.Plan(PlanRequest{Metas: metasA}, costs)
	if err != nil {
		t.Fatal(err)
	}
	if src == SourceCache {
		t.Fatal("evicted entry served from cache")
	}
}

func TestPlannerInvalidateAll(t *testing.T) {
	p := NewPlanner(PlannerConfig{Strategy: StrategyCost, InlineExact: true, Seed: 1})
	defer p.Close()
	costs := uniformCosts(5, 0.001)
	metas := twoBlockRequest()
	if _, _, err := p.Plan(PlanRequest{Metas: metas}, costs); err != nil {
		t.Fatal(err)
	}
	p.InvalidateAll()
	_, src, err := p.Plan(PlanRequest{Metas: metas}, costs)
	if err != nil {
		t.Fatal(err)
	}
	if src == SourceCache {
		t.Fatal("plan served from cache after InvalidateAll")
	}
}
