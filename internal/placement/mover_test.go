package placement

import (
	"math/rand"
	"testing"

	"ecstore/internal/model"
	"ecstore/internal/stats"
)

// fakeCatalog implements CatalogView for tests.
type fakeCatalog struct {
	blocks map[model.BlockID]*model.BlockMeta
	sites  []model.SiteID
}

func (f *fakeCatalog) BlockMeta(id model.BlockID) (*model.BlockMeta, bool) {
	m, ok := f.blocks[id]
	return m, ok
}

func (f *fakeCatalog) Sites() []model.SiteID { return f.sites }

var _ CatalogView = (*fakeCatalog)(nil)

// co-located scenario: blocks a and b are co-accessed but share no sites;
// moving a chunk of a onto one of b's sites should score positively.
func coAccessEnv(t *testing.T) (MoverEnv, *fakeCatalog) {
	t.Helper()
	cat := &fakeCatalog{
		blocks: map[model.BlockID]*model.BlockMeta{
			"a": makeMeta("a", 2, 1, 100, 1, 2, 3),
			"b": makeMeta("b", 2, 1, 100, 4, 5, 6),
		},
		sites: []model.SiteID{1, 2, 3, 4, 5, 6, 7, 8},
	}
	co := stats.NewCoAccessTracker(100)
	for i := 0; i < 50; i++ {
		co.Record([]model.BlockID{"a", "b"})
	}
	loads := stats.NewLoadTracker()
	for _, s := range cat.sites {
		loads.Report(s, stats.SiteLoad{CPU: 0.5, IOBytesPerSec: 1000})
	}
	env := MoverEnv{
		Catalog:     cat,
		CoAccess:    co,
		Loads:       loads,
		Costs:       uniformCosts(5, 0.001),
		RequestRate: 100,
	}
	return env, cat
}

func TestAccessGainPositiveForCoLocation(t *testing.T) {
	env, cat := coAccessEnv(t)
	m := NewMover(MoverConfig{Seed: 1})
	meta := cat.blocks["a"]
	// Moving a's chunk 0 from site 1 to site 4 (where b lives) lets a
	// future {a,b} query touch one fewer site.
	gain := m.AccessGain(env, meta, 0, 4)
	if gain <= 0 {
		t.Fatalf("AccessGain = %v, want > 0", gain)
	}
	// Moving to an unrelated empty site brings no co-location benefit.
	neutral := m.AccessGain(env, meta, 0, 7)
	if neutral >= gain {
		t.Fatalf("unrelated move gain %v >= co-location gain %v", neutral, gain)
	}
}

func TestLoadGainFavorsUnloading(t *testing.T) {
	env, cat := coAccessEnv(t)
	// Make site 1 hot and site 7 idle.
	env.Loads.Report(1, stats.SiteLoad{CPU: 0.95, IOBytesPerSec: 100000})
	env.Loads.Report(7, stats.SiteLoad{CPU: 0.05, IOBytesPerSec: 10})
	m := NewMover(MoverConfig{Seed: 1})
	meta := cat.blocks["a"]
	gain := m.LoadGain(env, meta, 1, 7)
	if gain <= 0 {
		t.Fatalf("LoadGain hot->cold = %v, want > 0", gain)
	}
	harm := m.LoadGain(env, meta, 7, 1)
	if harm > 0 {
		t.Fatalf("LoadGain cold->hot = %v, want <= 0", harm)
	}
}

func TestSelectMovementPlanCoLocates(t *testing.T) {
	env, cat := coAccessEnv(t)
	m := NewMover(MoverConfig{Seed: 3, MaxCandidateBlocks: 4})
	plan, ok := m.SelectMovementPlan(env)
	if !ok {
		t.Fatal("no movement plan found")
	}
	if plan.Score <= 0 {
		t.Fatalf("plan score = %v, want > 0", plan.Score)
	}
	// The selected destination must not already hold a chunk of the block.
	meta := cat.blocks[plan.Block]
	if meta.SiteSet()[plan.To] {
		t.Fatalf("plan moves chunk onto a site already holding the block: %v", plan)
	}
	if meta.Sites[plan.Chunk] != plan.From {
		t.Fatalf("plan's From does not match current placement: %v", plan)
	}
}

func TestSelectMovementPlanRespectsAvailability(t *testing.T) {
	env, _ := coAccessEnv(t)
	// Only sites 1..3 (a's own) and 7 are available; b's sites are down,
	// so any co-location move must target site 7 or nothing.
	env.Available = func(s model.SiteID) bool { return s <= 3 || s == 7 }
	m := NewMover(MoverConfig{Seed: 3})
	plan, ok := m.SelectMovementPlan(env)
	if ok && plan.To != 7 {
		meta, _ := env.Catalog.BlockMeta(plan.Block)
		if meta.SiteSet()[plan.To] || !env.Available(plan.To) {
			t.Fatalf("plan targets unavailable/occupied site: %v", plan)
		}
	}
}

func TestSelectMovementPlanEmptyStats(t *testing.T) {
	cat := &fakeCatalog{blocks: map[model.BlockID]*model.BlockMeta{}, sites: []model.SiteID{1, 2}}
	env := MoverEnv{
		Catalog:  cat,
		CoAccess: stats.NewCoAccessTracker(10),
		Loads:    stats.NewLoadTracker(),
		Costs:    uniformCosts(5, 0.001),
	}
	m := NewMover(MoverConfig{Seed: 1})
	if _, ok := m.SelectMovementPlan(env); ok {
		t.Fatal("movement plan from empty stats")
	}
}

func TestSelectMovementPlanEarlyStopping(t *testing.T) {
	env, _ := coAccessEnv(t)
	m := NewMover(MoverConfig{Seed: 1, MaxEvaluations: 1})
	// With a budget of one evaluation the search must still terminate
	// and may return at most one scored plan.
	plan, ok := m.SelectMovementPlan(env)
	if ok && plan.Score <= 0 {
		t.Fatalf("early-stopped plan has score %v", plan.Score)
	}
}

func TestMoverConfigDefaults(t *testing.T) {
	cfg := MoverConfig{}.withDefaults()
	if cfg.W1 != DefaultW1 || cfg.W2 != DefaultW2 {
		t.Fatalf("default weights = (%v, %v)", cfg.W1, cfg.W2)
	}
	if cfg.MaxCandidateBlocks == 0 || cfg.MaxPartners == 0 || cfg.MaxDestinations == 0 || cfg.MaxEvaluations == 0 {
		t.Fatal("defaults not applied")
	}
	// Explicit weights are preserved.
	cfg2 := MoverConfig{W1: 2, W2: 0}.withDefaults()
	if cfg2.W1 != 2 || cfg2.W2 != 0 {
		t.Fatalf("explicit weights overridden: (%v, %v)", cfg2.W1, cfg2.W2)
	}
}

// TestMovementNeverViolatesFaultTolerance is a property over random
// system states: every selected movement plan targets a site without a
// chunk of the moved block.
func TestMovementNeverViolatesFaultTolerance(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		numSites := 6 + rng.Intn(6)
		sites := make([]model.SiteID, numSites)
		for i := range sites {
			sites[i] = model.SiteID(i + 1)
		}
		cat := &fakeCatalog{blocks: map[model.BlockID]*model.BlockMeta{}, sites: sites}
		co := stats.NewCoAccessTracker(200)
		loads := stats.NewLoadTracker()
		for _, s := range sites {
			loads.Report(s, stats.SiteLoad{CPU: rng.Float64(), IOBytesPerSec: 100 + 1000*rng.Float64()})
		}
		numBlocks := 3 + rng.Intn(5)
		var blockIDs []model.BlockID
		for b := 0; b < numBlocks; b++ {
			id := model.BlockID(string(rune('a' + b)))
			perm := rng.Perm(numSites)
			ss := make([]model.SiteID, 4)
			for c := range ss {
				ss[c] = sites[perm[c]]
			}
			cat.blocks[id] = makeMeta(id, 2, 2, 100, ss...)
			blockIDs = append(blockIDs, id)
		}
		for i := 0; i < 100; i++ {
			a := blockIDs[rng.Intn(len(blockIDs))]
			b := blockIDs[rng.Intn(len(blockIDs))]
			co.Record([]model.BlockID{a, b})
		}
		env := MoverEnv{Catalog: cat, CoAccess: co, Loads: loads, Costs: uniformCosts(5, 0.001), RequestRate: 50}
		m := NewMover(MoverConfig{Seed: seed})
		plan, ok := m.SelectMovementPlan(env)
		if !ok {
			continue
		}
		meta := cat.blocks[plan.Block]
		if meta.SiteSet()[plan.To] {
			t.Fatalf("seed %d: plan %v violates fault tolerance", seed, plan)
		}
		if meta.Sites[plan.Chunk] != plan.From {
			t.Fatalf("seed %d: plan %v has stale From", seed, plan)
		}
	}
}

func TestPlacerRandomDistinct(t *testing.T) {
	p, err := NewPlacer(PlaceRandom, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	sites := []model.SiteID{1, 2, 3, 4, 5}
	got, err := p.Place(sites, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[model.SiteID]bool{}
	for _, s := range got {
		if seen[s] {
			t.Fatalf("duplicate site %d in placement", s)
		}
		seen[s] = true
	}
}

func TestPlacerInsufficientSites(t *testing.T) {
	p, err := NewPlacer(PlaceRandom, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Place([]model.SiteID{1, 2}, 3); err == nil {
		t.Fatal("accepted placement with too few sites")
	}
	if _, err := p.Place([]model.SiteID{1, 1, 1}, 2); err == nil {
		t.Fatal("duplicates counted as distinct sites")
	}
	if _, err := p.Place([]model.SiteID{1}, 0); err == nil {
		t.Fatal("accepted zero chunk count")
	}
}

func TestPlacerLoadAware(t *testing.T) {
	loads := stats.NewLoadTracker()
	loads.Report(1, stats.SiteLoad{CPU: 0.9})
	loads.Report(2, stats.SiteLoad{CPU: 0.9})
	loads.Report(3, stats.SiteLoad{CPU: 0.1})
	loads.Report(4, stats.SiteLoad{CPU: 0.1})
	p, err := NewPlacer(PlaceLoadAware, loads, 1)
	if err != nil {
		t.Fatal(err)
	}
	cold := 0
	for trial := 0; trial < 30; trial++ {
		got, err := p.Place([]model.SiteID{1, 2, 3, 4}, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range got {
			if s == 3 || s == 4 {
				cold++
			}
		}
	}
	if cold < 40 { // of 60 picks, the cold half should dominate
		t.Fatalf("load-aware placer picked cold sites only %d/60 times", cold)
	}
}

func TestPlacerLoadAwareRequiresTracker(t *testing.T) {
	if _, err := NewPlacer(PlaceLoadAware, nil, 1); err == nil {
		t.Fatal("load-aware placer accepted nil tracker")
	}
	if _, err := NewPlacer(PlaceStrategy(99), nil, 1); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if PlaceRandom.String() != "random" || PlaceLoadAware.String() != "load-aware" {
		t.Fatal("PlaceStrategy.String mismatch")
	}
}

func TestMinScoreSuppressesMarginalMoves(t *testing.T) {
	env, _ := coAccessEnv(t)
	// An absurdly high minimum score means no plan qualifies.
	m := NewMover(MoverConfig{Seed: 3, MinScoreFracOfAvgO: 1e9})
	if _, ok := m.SelectMovementPlan(env); ok {
		t.Fatal("marginal move selected despite threshold")
	}
}

func TestW2AdaptiveScaling(t *testing.T) {
	env, cat := coAccessEnv(t)
	meta := cat.blocks["a"]
	env.Loads.Report(1, stats.SiteLoad{CPU: 0.9, IOBytesPerSec: 100000})
	env.Loads.Report(7, stats.SiteLoad{CPU: 0.1, IOBytesPerSec: 100})

	fixed := NewMover(MoverConfig{W1: 0, W2: 1, Seed: 1})
	adaptive := NewMover(MoverConfig{W1: 0, W2: 1, W2Adaptive: true, Seed: 1})
	sFixed := fixed.Score(env, meta, 0, 1, 7)
	sAdaptive := adaptive.Score(env, meta, 0, 1, 7)
	// Adaptive scales by avg(o_j) (DefaultO = 5 here): 5x the fixed score.
	if sFixed == 0 {
		t.Skip("no load gain on this layout")
	}
	ratio := sAdaptive / sFixed
	if ratio < 4.9 || ratio > 5.1 {
		t.Fatalf("adaptive/fixed ratio = %v, want ~5", ratio)
	}
}
