package placement

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ecstore/internal/model"
)

// testState builds a small system: blocks placed across sites with RS(k,r).
func makeMeta(id model.BlockID, k, r int, chunkSize int64, sites ...model.SiteID) *model.BlockMeta {
	return &model.BlockMeta{
		ID:        id,
		Scheme:    model.SchemeErasure,
		K:         k,
		R:         r,
		Size:      chunkSize * int64(k),
		ChunkSize: chunkSize,
		Sites:     sites,
	}
}

func uniformCosts(o, m float64) *model.SiteCosts {
	return &model.SiteCosts{DefaultO: o, DefaultM: m}
}

func TestPlanCost(t *testing.T) {
	metas := map[model.BlockID]*model.BlockMeta{
		"a": makeMeta("a", 2, 1, 100, 1, 2, 3),
	}
	plan := model.NewAccessPlan()
	plan.Add(1, model.ChunkRef{Block: "a", Chunk: 0})
	plan.Add(2, model.ChunkRef{Block: "a", Chunk: 1})
	costs := uniformCosts(5, 0.01)
	// 2 sites * 5 + 2 chunks * 0.01*100 = 10 + 2 = 12.
	if got := PlanCost(plan, metas, costs); math.Abs(got-12) > 1e-9 {
		t.Fatalf("PlanCost = %v, want 12", got)
	}
}

func TestRandomPlanValidAndRandom(t *testing.T) {
	metas := map[model.BlockID]*model.BlockMeta{
		"a": makeMeta("a", 2, 2, 100, 1, 2, 3, 4),
		"b": makeMeta("b", 2, 2, 100, 2, 3, 4, 5),
	}
	req := PlanRequest{Metas: metas}
	rng := rand.New(rand.NewSource(1))
	distinct := make(map[string]bool)
	for i := 0; i < 20; i++ {
		plan, err := RandomPlan(req, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidatePlan(plan, metas, 0); err != nil {
			t.Fatalf("invalid random plan: %v", err)
		}
		key := ""
		for _, s := range plan.SortedSites() {
			key += string(rune('A' + int(s)))
		}
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Fatal("random planner produced identical plans every time")
	}
}

func TestRandomPlanInfeasible(t *testing.T) {
	metas := map[model.BlockID]*model.BlockMeta{
		"a": makeMeta("a", 2, 1, 100, 1, 2, 3),
	}
	avail := func(s model.SiteID) bool { return s == 1 } // only 1 chunk reachable
	_, err := RandomPlan(PlanRequest{Metas: metas, Available: avail}, rand.New(rand.NewSource(1)))
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestGreedyPlanPrefersCoLocation(t *testing.T) {
	// Blocks a and b overlap on sites 1 and 2; greedy should access
	// exactly those two sites rather than spreading to 3..6.
	metas := map[model.BlockID]*model.BlockMeta{
		"a": makeMeta("a", 2, 1, 100, 1, 2, 3),
		"b": makeMeta("b", 2, 1, 100, 1, 2, 6),
	}
	plan, err := GreedyPlan(PlanRequest{Metas: metas}, uniformCosts(5, 0.001), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePlan(plan, metas, 0); err != nil {
		t.Fatal(err)
	}
	if got := plan.SitesAccessed(); got != 2 {
		t.Fatalf("greedy accessed %d sites, want 2 (plan %+v)", got, plan.Reads)
	}
}

func TestGreedyPlanAvoidsExpensiveSite(t *testing.T) {
	metas := map[model.BlockID]*model.BlockMeta{
		"a": makeMeta("a", 2, 1, 100, 1, 2, 3),
	}
	costs := &model.SiteCosts{
		O:        map[model.SiteID]float64{3: 100},
		DefaultO: 5, DefaultM: 0.001,
	}
	plan, err := GreedyPlan(PlanRequest{Metas: metas}, costs, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, hit := plan.Reads[3]; hit {
		t.Fatalf("greedy used overloaded site 3: %+v", plan.Reads)
	}
}

func TestExactPlanOptimal(t *testing.T) {
	metas := map[model.BlockID]*model.BlockMeta{
		"a": makeMeta("a", 2, 2, 100, 1, 2, 3, 4),
		"b": makeMeta("b", 2, 2, 100, 3, 4, 5, 6),
	}
	costs := uniformCosts(5, 0.001)
	plan, err := ExactPlan(PlanRequest{Metas: metas}, costs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePlan(plan, metas, 0); err != nil {
		t.Fatal(err)
	}
	// Optimal: read both blocks from sites 3 and 4 only.
	if got := plan.SitesAccessed(); got != 2 {
		t.Fatalf("exact plan accessed %d sites, want 2: %+v", got, plan.Reads)
	}
	wantCost, exact := ExactCost(metas, costs, nil, 0)
	if !exact {
		t.Fatal("ExactCost fell back to greedy unexpectedly")
	}
	if got := PlanCost(plan, metas, costs); math.Abs(got-wantCost) > 1e-6 {
		t.Fatalf("ILP cost %v != brute-force cost %v", got, wantCost)
	}
}

func TestExactPlanRespectsAvailability(t *testing.T) {
	metas := map[model.BlockID]*model.BlockMeta{
		"a": makeMeta("a", 2, 2, 100, 1, 2, 3, 4),
	}
	avail := func(s model.SiteID) bool { return s != 3 && s != 4 }
	plan, err := ExactPlan(PlanRequest{Metas: metas, Available: avail}, uniformCosts(5, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	for site := range plan.Reads {
		if site == 3 || site == 4 {
			t.Fatalf("plan used unavailable site %d", site)
		}
	}
}

func TestExactPlanInfeasible(t *testing.T) {
	metas := map[model.BlockID]*model.BlockMeta{
		"a": makeMeta("a", 2, 1, 100, 1, 2, 3),
	}
	avail := func(s model.SiteID) bool { return s == 2 }
	if _, err := ExactPlan(PlanRequest{Metas: metas, Available: avail}, uniformCosts(5, 0.001)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestLateBindingDelta(t *testing.T) {
	metas := map[model.BlockID]*model.BlockMeta{
		"a": makeMeta("a", 2, 2, 100, 1, 2, 3, 4),
	}
	costs := uniformCosts(5, 0.001)
	for _, delta := range []int{0, 1, 2} {
		plan, err := ExactPlan(PlanRequest{Metas: metas, Delta: delta}, costs)
		if err != nil {
			t.Fatalf("delta %d: %v", delta, err)
		}
		if got := plan.ChunksFor("a"); got != 2+delta {
			t.Fatalf("delta %d: plan fetches %d chunks, want %d", delta, got, 2+delta)
		}
		if err := ValidatePlan(plan, metas, delta); err != nil {
			t.Fatalf("delta %d: %v", delta, err)
		}
	}
	// Delta beyond available chunks is capped.
	plan, err := ExactPlan(PlanRequest{Metas: metas, Delta: 5}, costs)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.ChunksFor("a"); got != 4 {
		t.Fatalf("capped delta: %d chunks, want 4", got)
	}
}

// TestExactPlanMatchesBruteForceProperty is the core solver correctness
// property: on random small instances, the ILP's plan cost equals the
// exhaustive optimum.
func TestExactPlanMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numSites := 4 + r.Intn(5) // 4..8
		numBlocks := 1 + r.Intn(3)
		metas := make(map[model.BlockID]*model.BlockMeta, numBlocks)
		for b := 0; b < numBlocks; b++ {
			k := 2
			rr := 1 + r.Intn(2)
			perm := r.Perm(numSites)
			sites := make([]model.SiteID, k+rr)
			for c := range sites {
				sites[c] = model.SiteID(perm[c] + 1)
			}
			id := model.BlockID(string(rune('a' + b)))
			metas[id] = makeMeta(id, k, rr, int64(50+r.Intn(200)), sites...)
		}
		costs := &model.SiteCosts{
			O:        map[model.SiteID]float64{},
			M:        map[model.SiteID]float64{},
			DefaultO: 5, DefaultM: 0.01,
		}
		for s := 1; s <= numSites; s++ {
			costs.O[model.SiteID(s)] = 1 + 10*r.Float64()
			costs.M[model.SiteID(s)] = 0.001 + 0.02*r.Float64()
		}

		plan, err := ExactPlan(PlanRequest{Metas: metas}, costs)
		if err != nil {
			return false
		}
		if err := ValidatePlan(plan, metas, 0); err != nil {
			return false
		}
		want, exact := ExactCost(metas, costs, nil, 0)
		if !exact {
			return true // instance too large for brute force; skip
		}
		got := PlanCost(plan, metas, costs)
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestGreedyNeverBeatsExactProperty: greedy cost is an upper bound on the
// exact optimum.
func TestGreedyNeverBeatsExactProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		metas := map[model.BlockID]*model.BlockMeta{
			"a": makeMeta("a", 2, 2, 100,
				model.SiteID(r.Intn(4)+1), model.SiteID(r.Intn(4)+5), 9, 10),
			"b": makeMeta("b", 2, 2, 100,
				model.SiteID(r.Intn(4)+1), model.SiteID(r.Intn(4)+5), 11, 12),
		}
		costs := uniformCosts(5, 0.001)
		gp, err := GreedyPlan(PlanRequest{Metas: metas}, costs, r)
		if err != nil {
			return false
		}
		want, _ := ExactCost(metas, costs, nil, 0)
		return PlanCost(gp, metas, costs) >= want-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestValidatePlanCatchesBadPlans(t *testing.T) {
	metas := map[model.BlockID]*model.BlockMeta{
		"a": makeMeta("a", 2, 1, 100, 1, 2, 3),
	}
	// Missing chunks.
	p1 := model.NewAccessPlan()
	p1.Add(1, model.ChunkRef{Block: "a", Chunk: 0})
	if err := ValidatePlan(p1, metas, 0); err == nil {
		t.Fatal("under-filled plan validated")
	}
	// Wrong site.
	p2 := model.NewAccessPlan()
	p2.Add(9, model.ChunkRef{Block: "a", Chunk: 0})
	p2.Add(2, model.ChunkRef{Block: "a", Chunk: 1})
	if err := ValidatePlan(p2, metas, 0); err == nil {
		t.Fatal("wrong-site plan validated")
	}
	// Duplicate chunk.
	p3 := model.NewAccessPlan()
	p3.Add(1, model.ChunkRef{Block: "a", Chunk: 0})
	p3.Add(1, model.ChunkRef{Block: "a", Chunk: 0})
	if err := ValidatePlan(p3, metas, 0); err == nil {
		t.Fatal("duplicate-chunk plan validated")
	}
	// Unknown block.
	p4 := model.NewAccessPlan()
	p4.Add(1, model.ChunkRef{Block: "zz", Chunk: 0})
	if err := ValidatePlan(p4, metas, 0); err == nil {
		t.Fatal("unknown-block plan validated")
	}
	// Chunk id out of range.
	p5 := model.NewAccessPlan()
	p5.Add(1, model.ChunkRef{Block: "a", Chunk: 7})
	if err := ValidatePlan(p5, metas, 0); err == nil {
		t.Fatal("out-of-range chunk validated")
	}
	var pe *PlanError
	err := ValidatePlan(p5, metas, 0)
	if !errors.As(err, &pe) {
		t.Fatalf("error type = %T, want *PlanError", err)
	}
	if pe.Error() == "" {
		t.Fatal("empty PlanError message")
	}
}

func TestStrategyStrings(t *testing.T) {
	if StrategyRandom.String() != "random" || StrategyCost.String() != "cost" {
		t.Fatal("Strategy.String mismatch")
	}
	if SourceCache.String() != "cache" || SourceGreedy.String() != "greedy" ||
		SourceExact.String() != "exact" || SourceRandom.String() != "random" {
		t.Fatal("PlanSource.String mismatch")
	}
}

func TestPlanRequestWithout(t *testing.T) {
	metas := map[model.BlockID]*model.BlockMeta{
		"a": makeMeta("a", 2, 1, 100, 1, 2, 3),
		"b": makeMeta("b", 2, 1, 100, 2, 3, 4),
		"c": makeMeta("c", 2, 1, 100, 3, 4, 5),
	}
	req := PlanRequest{Metas: metas}

	got := req.Without([]model.BlockID{"b", "missing"})
	if len(got.Metas) != 2 || got.Metas["b"] != nil {
		t.Fatalf("Without kept %v", got.Metas)
	}
	if got.Metas["a"] != metas["a"] || got.Metas["c"] != metas["c"] {
		t.Fatal("Without must keep surviving metas")
	}
	// The receiver's map is untouched: callers strip cache hits from a
	// request that may still be replanned with the full set elsewhere.
	if len(req.Metas) != 3 {
		t.Fatalf("Without mutated the receiver: %v", req.Metas)
	}
	// Stripping nothing returns the request unchanged, same map.
	same := req.Without(nil)
	if len(same.Metas) != 3 {
		t.Fatal("empty Without changed the request")
	}
}
