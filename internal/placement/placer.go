package placement

import (
	"fmt"
	"math/rand"
	"sort"

	"ecstore/internal/model"
	"ecstore/internal/stats"
)

// PlaceStrategy selects how chunks of new blocks are placed (step W1 of
// Figure 3).
type PlaceStrategy int

// Placement strategies for writes.
const (
	// PlaceRandom scatters chunks uniformly at random (baselines).
	PlaceRandom PlaceStrategy = iota + 1
	// PlaceLoadAware prefers lightly loaded sites for new chunks while
	// still spreading across failure domains.
	PlaceLoadAware
)

func (s PlaceStrategy) String() string {
	switch s {
	case PlaceRandom:
		return "random"
	case PlaceLoadAware:
		return "load-aware"
	default:
		return fmt.Sprintf("PlaceStrategy(%d)", int(s))
	}
}

// Placer chooses sites for the chunks of newly written blocks. Chunks of
// one block always land on distinct sites to preserve r-fault tolerance.
type Placer struct {
	strategy PlaceStrategy
	rng      *rand.Rand
	loads    *stats.LoadTracker // may be nil for PlaceRandom
}

// NewPlacer returns a placer. loads may be nil unless strategy is
// PlaceLoadAware.
func NewPlacer(strategy PlaceStrategy, loads *stats.LoadTracker, seed int64) (*Placer, error) {
	if strategy == PlaceLoadAware && loads == nil {
		return nil, fmt.Errorf("placement: load-aware placer requires a load tracker")
	}
	if strategy != PlaceRandom && strategy != PlaceLoadAware {
		return nil, fmt.Errorf("placement: unknown place strategy %d", strategy)
	}
	return &Placer{strategy: strategy, rng: rand.New(rand.NewSource(seed)), loads: loads}, nil
}

// Place selects `chunks` distinct sites from the candidate list. It
// returns an error when fewer than `chunks` distinct sites are available.
func (p *Placer) Place(sites []model.SiteID, chunks int) ([]model.SiteID, error) {
	if chunks <= 0 {
		return nil, fmt.Errorf("placement: invalid chunk count %d", chunks)
	}
	uniq := dedupSites(sites)
	if len(uniq) < chunks {
		return nil, fmt.Errorf("placement: need %d distinct sites, have %d", chunks, len(uniq))
	}
	switch p.strategy {
	case PlaceLoadAware:
		sort.Slice(uniq, func(i, j int) bool {
			wi := p.loads.Omega(uniq[i])
			wj := p.loads.Omega(uniq[j])
			if wi != wj {
				return wi < wj
			}
			return uniq[i] < uniq[j]
		})
		// Sample from the lightly loaded half so concurrent writers do
		// not all stampede the single coldest site.
		pool := len(uniq) / 2
		if pool < chunks {
			pool = chunks
		}
		if pool > len(uniq) {
			pool = len(uniq)
		}
		cand := append([]model.SiteID(nil), uniq[:pool]...)
		p.rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
		return cand[:chunks], nil
	default:
		cand := append([]model.SiteID(nil), uniq...)
		p.rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
		return cand[:chunks], nil
	}
}

func dedupSites(sites []model.SiteID) []model.SiteID {
	seen := make(map[model.SiteID]bool, len(sites))
	out := make([]model.SiteID, 0, len(sites))
	for _, s := range sites {
		if s == model.NoSite || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}
