package placement

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"ecstore/internal/model"
	"ecstore/internal/stats"
)

// PlaceStrategy selects how chunks of new blocks are placed (step W1 of
// Figure 3).
type PlaceStrategy int

// Placement strategies for writes.
const (
	// PlaceRandom scatters chunks uniformly at random (baselines).
	PlaceRandom PlaceStrategy = iota + 1
	// PlaceLoadAware prefers lightly loaded sites for new chunks while
	// still spreading across failure domains.
	PlaceLoadAware
)

func (s PlaceStrategy) String() string {
	switch s {
	case PlaceRandom:
		return "random"
	case PlaceLoadAware:
		return "load-aware"
	default:
		return fmt.Sprintf("PlaceStrategy(%d)", int(s))
	}
}

// Placer chooses sites for the chunks of newly written blocks. Chunks of
// one block always land on distinct sites to preserve r-fault tolerance.
type Placer struct {
	strategy PlaceStrategy
	loads    *stats.LoadTracker // may be nil for PlaceRandom

	// rngMu serializes rng: concurrent writers (multi-tenant gateway
	// traffic) all place through one shared Placer.
	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewPlacer returns a placer. loads may be nil unless strategy is
// PlaceLoadAware.
func NewPlacer(strategy PlaceStrategy, loads *stats.LoadTracker, seed int64) (*Placer, error) {
	if strategy == PlaceLoadAware && loads == nil {
		return nil, fmt.Errorf("placement: load-aware placer requires a load tracker")
	}
	if strategy != PlaceRandom && strategy != PlaceLoadAware {
		return nil, fmt.Errorf("placement: unknown place strategy %d", strategy)
	}
	return &Placer{strategy: strategy, rng: rand.New(rand.NewSource(seed)), loads: loads}, nil
}

// Place selects `chunks` distinct sites from the candidate list. It
// returns an error when fewer than `chunks` distinct sites are available.
func (p *Placer) Place(sites []model.SiteID, chunks int) ([]model.SiteID, error) {
	ordered, err := p.ordered(sites, chunks)
	if err != nil {
		return nil, err
	}
	return ordered[:chunks], nil
}

// PlaceZoned selects `chunks` distinct sites while capping the number of
// chunks landing in any one failure zone at maxPerZone, so a whole-zone
// outage costs at most maxPerZone chunks of the block (choose
// model.MaxChunksPerZone(r) to keep zone loss within the code's erasure
// margin). Sites with an empty zone count as their own singleton zone.
// The cap is best-effort: when the zone population cannot satisfy it —
// fewer zones than chunks/maxPerZone requires — the remainder relaxes the
// cap rather than failing the write.
func (p *Placer) PlaceZoned(sites []model.SiteID, chunks int, zone func(model.SiteID) string, maxPerZone int) ([]model.SiteID, error) {
	if zone == nil || maxPerZone <= 0 {
		return p.Place(sites, chunks)
	}
	ordered, err := p.ordered(sites, chunks)
	if err != nil {
		return nil, err
	}
	zoneKey := func(s model.SiteID) string {
		if z := zone(s); z != "" {
			return z
		}
		return fmt.Sprintf("site-%d", s)
	}
	chosen := make([]model.SiteID, 0, chunks)
	taken := make(map[model.SiteID]bool, chunks)
	perZone := make(map[string]int)
	for _, s := range ordered {
		if len(chosen) == chunks {
			return chosen, nil
		}
		if z := zoneKey(s); perZone[z] < maxPerZone {
			perZone[z]++
			taken[s] = true
			chosen = append(chosen, s)
		}
	}
	// Cap unsatisfiable with this zone population: relax for the rest.
	for _, s := range ordered {
		if len(chosen) == chunks {
			break
		}
		if !taken[s] {
			chosen = append(chosen, s)
		}
	}
	return chosen, nil
}

// ordered returns the strategy's full preference order over the distinct
// candidate sites (length >= chunks, or an error).
func (p *Placer) ordered(sites []model.SiteID, chunks int) ([]model.SiteID, error) {
	if chunks <= 0 {
		return nil, fmt.Errorf("placement: invalid chunk count %d", chunks)
	}
	uniq := dedupSites(sites)
	if len(uniq) < chunks {
		return nil, fmt.Errorf("placement: need %d distinct sites, have %d", chunks, len(uniq))
	}
	switch p.strategy {
	case PlaceLoadAware:
		sort.Slice(uniq, func(i, j int) bool {
			wi := p.loads.Omega(uniq[i])
			wj := p.loads.Omega(uniq[j])
			if wi != wj {
				return wi < wj
			}
			return uniq[i] < uniq[j]
		})
		// Shuffle the lightly loaded half so concurrent writers do not
		// all stampede the single coldest site; the loaded half keeps
		// its order as the overflow tail.
		pool := len(uniq) / 2
		if pool < chunks {
			pool = chunks
		}
		if pool > len(uniq) {
			pool = len(uniq)
		}
		cand := append([]model.SiteID(nil), uniq...)
		p.shuffle(cand, pool)
		return cand, nil
	default:
		cand := append([]model.SiteID(nil), uniq...)
		p.shuffle(cand, len(cand))
		return cand, nil
	}
}

// shuffle permutes the first n sites of cand under the rng lock.
func (p *Placer) shuffle(cand []model.SiteID, n int) {
	p.rngMu.Lock()
	defer p.rngMu.Unlock()
	p.rng.Shuffle(n, func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
}

func dedupSites(sites []model.SiteID) []model.SiteID {
	seen := make(map[model.SiteID]bool, len(sites))
	out := make([]model.SiteID, 0, len(sites))
	for _, s := range sites {
		if s == model.NoSite || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}
