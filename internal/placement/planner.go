package placement

import (
	"fmt"
	"math/rand"
	"sort"

	"ecstore/internal/ilp"
	"ecstore/internal/model"
)

// Strategy selects how access plans are generated.
type Strategy int

// Access-plan strategies, matching the paper's evaluated configurations.
const (
	// StrategyRandom picks random chunks/replicas: the R and EC
	// baselines (Section VI-A, "random data placement and access").
	StrategyRandom Strategy = iota + 1
	// StrategyCost minimizes Equation 1 (configurations EC+C and
	// EC+C+M) via the plan cache, greedy fallback and exact solver.
	StrategyCost
)

func (s Strategy) String() string {
	switch s {
	case StrategyRandom:
		return "random"
	case StrategyCost:
		return "cost"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// PlanSource reports how a returned plan was produced, for instrumentation
// (the paper reports a ~90% plan-cache hit rate).
type PlanSource int

// Plan provenance.
const (
	SourceRandom PlanSource = iota + 1
	SourceGreedy
	SourceCache
	SourceExact
)

func (s PlanSource) String() string {
	switch s {
	case SourceRandom:
		return "random"
	case SourceGreedy:
		return "greedy"
	case SourceCache:
		return "cache"
	case SourceExact:
		return "exact"
	default:
		return fmt.Sprintf("PlanSource(%d)", int(s))
	}
}

// PlanRequest describes one multi-block read to plan.
type PlanRequest struct {
	// Metas holds the metadata of every requested block.
	Metas map[model.BlockID]*model.BlockMeta
	// Delta is the late-binding surplus: plans fetch k+Delta chunks per
	// block (capped at the available chunk count). Zero disables late
	// binding.
	Delta int
	// Available filters sites; nil means every site is reachable.
	Available func(model.SiteID) bool
}

// Without returns a copy of the request with the given blocks removed
// from Metas (the original request is untouched). The decoded-block
// cache uses it to strip hits from planning: a block served from local
// memory accesses no sites, which can only lower the request's Eq. 1
// cost.
func (r PlanRequest) Without(ids []model.BlockID) PlanRequest {
	if len(ids) == 0 {
		return r
	}
	metas := make(map[model.BlockID]*model.BlockMeta, len(r.Metas))
	for id, meta := range r.Metas {
		metas[id] = meta
	}
	for _, id := range ids {
		delete(metas, id)
	}
	r.Metas = metas
	return r
}

// ErrInfeasible is returned when some block cannot be reconstructed from
// the available sites.
var ErrInfeasible = fmt.Errorf("placement: request is infeasible")

// RandomPlan implements the baseline strategy: for each block choose
// RequiredChunks()+delta chunks uniformly at random among available sites.
func RandomPlan(req PlanRequest, rng *rand.Rand) (*model.AccessPlan, error) {
	rc := buildCandidates(req.Metas, req.Available)
	if !rc.feasible() {
		return nil, ErrInfeasible
	}
	plan := model.NewAccessPlan()
	for _, id := range rc.blocks {
		cands := append([]candidate(nil), rc.cands[id]...)
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		for _, c := range cands[:rc.need(id, req.Delta)] {
			plan.Add(c.site, c.ref)
		}
	}
	return plan, nil
}

// GreedyPlan implements the paper's cache-miss heuristic: chunks at sites
// already present in the plan are preferred (their o_j is already paid);
// remaining chunks are chosen by marginal cost with random tie-breaking.
func GreedyPlan(req PlanRequest, costs *model.SiteCosts, rng *rand.Rand) (*model.AccessPlan, error) {
	rc := buildCandidates(req.Metas, req.Available)
	if !rc.feasible() {
		return nil, ErrInfeasible
	}
	return greedyPlan(rc, costs, req.Delta, rng), nil
}

// greedyPlan builds a plan over precomputed candidates. rng may be nil for
// deterministic tie-breaking by site id.
func greedyPlan(rc *requestCandidates, costs *model.SiteCosts, delta int, rng *rand.Rand) *model.AccessPlan {
	plan := model.NewAccessPlan()
	accessed := make(map[model.SiteID]bool)

	// Sites holding chunks of many requested blocks are better targets:
	// paying their o_j once amortizes over several blocks.
	shared := make(map[model.SiteID]int)
	for _, id := range rc.blocks {
		for _, c := range rc.cands[id] {
			shared[c.site]++
		}
	}

	// Process blocks with the fewest candidates first so constrained
	// blocks are not starved of co-location opportunities.
	order := append([]model.BlockID(nil), rc.blocks...)
	sort.SliceStable(order, func(i, j int) bool {
		return len(rc.cands[order[i]]) < len(rc.cands[order[j]])
	})

	for _, id := range order {
		meta := rc.metas[id]
		need := rc.need(id, delta)
		type scored struct {
			c      candidate
			cost   float64
			shared int
			tie    float64
		}
		scoredCands := make([]scored, 0, len(rc.cands[id]))
		for _, c := range rc.cands[id] {
			cost := costs.MCost(c.site) * float64(meta.ChunkSize)
			if !accessed[c.site] {
				cost += costs.OCost(c.site)
			}
			tie := float64(c.site)
			if rng != nil {
				tie = rng.Float64()
			}
			scoredCands = append(scoredCands, scored{c: c, cost: cost, shared: shared[c.site], tie: tie})
		}
		sort.Slice(scoredCands, func(i, j int) bool {
			if scoredCands[i].cost != scoredCands[j].cost {
				return scoredCands[i].cost < scoredCands[j].cost
			}
			if scoredCands[i].shared != scoredCands[j].shared {
				return scoredCands[i].shared > scoredCands[j].shared
			}
			return scoredCands[i].tie < scoredCands[j].tie
		})
		for _, sc := range scoredCands[:need] {
			plan.Add(sc.c.site, sc.c.ref)
			accessed[sc.c.site] = true
		}
	}
	return plan
}

// ExactPlan solves the access-planning ILP of Equation 4 exactly with
// branch and bound. Variables: one s_ij per existing chunk on an available
// site, one a_j per candidate site. Objective and constraints follow
// Equations 1-3, with Equation 2's right-hand side raised by Delta for late
// binding (Section IV-B1).
func ExactPlan(req PlanRequest, costs *model.SiteCosts) (*model.AccessPlan, error) {
	return ExactPlanWithNodes(req, costs, 5000)
}

// ExactPlanWithNodes is ExactPlan with an explicit branch-and-bound node
// budget; maxNodes <= 0 uses the default.
func ExactPlanWithNodes(req PlanRequest, costs *model.SiteCosts, maxNodes int) (*model.AccessPlan, error) {
	if maxNodes <= 0 {
		maxNodes = 5000
	}
	rc := buildCandidates(req.Metas, req.Available)
	if !rc.feasible() {
		return nil, ErrInfeasible
	}

	// Variable layout: chunk-selection variables first, then site vars.
	type chunkVar struct {
		c     candidate
		block model.BlockID
	}
	var chunkVars []chunkVar
	chunkIdx := make(map[model.ChunkRef]int)
	for _, id := range rc.blocks {
		for _, c := range rc.cands[id] {
			chunkIdx[c.ref] = len(chunkVars)
			chunkVars = append(chunkVars, chunkVar{c: c, block: id})
		}
	}
	siteVarBase := len(chunkVars)
	siteIdx := make(map[model.SiteID]int, len(rc.sites))
	for i, s := range rc.sites {
		siteIdx[s] = siteVarBase + i
	}
	nVars := siteVarBase + len(rc.sites)

	p := &ilp.Problem{
		NumVars:     nVars,
		Objective:   make([]float64, nVars),
		UpperBounds: make([]float64, nVars),
	}
	for i := range p.UpperBounds {
		p.UpperBounds[i] = 1
	}
	for i, cv := range chunkVars {
		p.Objective[i] = costs.MCost(cv.c.site) * float64(rc.metas[cv.block].ChunkSize)
	}
	for _, s := range rc.sites {
		p.Objective[siteIdx[s]] = costs.OCost(s)
	}

	// Equation 2: sum of selected chunks per block >= k_i (+ delta).
	for _, id := range rc.blocks {
		vars := make([]int, 0, len(rc.cands[id]))
		coeffs := make([]float64, 0, len(rc.cands[id]))
		for _, c := range rc.cands[id] {
			vars = append(vars, chunkIdx[c.ref])
			coeffs = append(coeffs, 1)
		}
		p.Constraints = append(p.Constraints, ilp.Constraint{
			Vars: vars, Coeffs: coeffs, Op: ilp.GE, RHS: float64(rc.need(id, req.Delta)),
		})
	}

	// Equation 3: |Q|·a_j - Σ_i s_ij >= 0 for every candidate site.
	q := float64(len(rc.blocks))
	for _, s := range rc.sites {
		vars := []int{siteIdx[s]}
		coeffs := []float64{q}
		for _, id := range rc.blocks {
			for _, c := range rc.cands[id] {
				if c.site == s {
					vars = append(vars, chunkIdx[c.ref])
					coeffs = append(coeffs, -1)
				}
			}
		}
		p.Constraints = append(p.Constraints, ilp.Constraint{Vars: vars, Coeffs: coeffs, Op: ilp.GE, RHS: 0})
	}

	ints := make([]int, nVars)
	for i := range ints {
		ints[i] = i
	}
	sol, err := ilp.SolveInt(p, ints, ilp.SolveOptions{MaxNodes: maxNodes})
	if err != nil {
		return nil, fmt.Errorf("solve access ILP: %w", err)
	}
	if sol.Status == ilp.StatusInfeasible {
		return nil, ErrInfeasible
	}
	if sol.X == nil {
		// Node limit without incumbent: callers fall back to greedy.
		return nil, fmt.Errorf("placement: ILP node limit reached without incumbent")
	}

	plan := model.NewAccessPlan()
	for i, cv := range chunkVars {
		if sol.X[i] > 0.5 {
			plan.Add(cv.c.site, cv.c.ref)
		}
	}
	// Branch and bound can select more chunks than needed when ties are
	// free; trim any surplus beyond need to keep plans minimal.
	trimSurplus(plan, rc, req.Delta, costs)
	return plan, nil
}

// trimSurplus removes selected chunks beyond each block's requirement,
// dropping the most expensive first, and prunes now-empty sites.
func trimSurplus(plan *model.AccessPlan, rc *requestCandidates, delta int, costs *model.SiteCosts) {
	counts := make(map[model.BlockID]int)
	for _, refs := range plan.Reads {
		for _, ref := range refs {
			counts[ref.Block]++
		}
	}
	for _, id := range rc.blocks {
		need := rc.need(id, delta)
		for counts[id] > need {
			// Drop the selected chunk of this block whose site read
			// cost is highest, preferring sites with multiple reads
			// (so site overheads stay amortized).
			var worstSite model.SiteID = model.NoSite
			worstIdx := -1
			worstCost := -1.0
			for site, refs := range plan.Reads {
				for i, ref := range refs {
					if ref.Block != id {
						continue
					}
					c := costs.MCost(site) * float64(rc.metas[id].ChunkSize)
					if len(refs) == 1 {
						c += costs.OCost(site)
					}
					if c > worstCost {
						worstCost = c
						worstSite = site
						worstIdx = i
					}
				}
			}
			if worstIdx < 0 {
				break
			}
			refs := plan.Reads[worstSite]
			plan.Reads[worstSite] = append(refs[:worstIdx], refs[worstIdx+1:]...)
			if len(plan.Reads[worstSite]) == 0 {
				delete(plan.Reads, worstSite)
			}
			counts[id]--
		}
	}
}
