package placement

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/obs"
)

// cacheKey identifies a request shape: the sorted block ids, the late
// binding delta, and the placement versions of the blocks (so a moved
// chunk invalidates stale plans).
func cacheKey(req PlanRequest) string {
	ids := make([]string, 0, len(req.Metas))
	for id := range req.Metas {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	var b strings.Builder
	for _, id := range ids {
		b.WriteString(id)
		b.WriteByte('@')
		b.WriteString(strconv.FormatUint(req.Metas[model.BlockID(id)].Version, 10))
		b.WriteByte('|')
	}
	b.WriteString("d=")
	b.WriteString(strconv.Itoa(req.Delta))
	return b.String()
}

// PlannerConfig tunes the caching planner.
type PlannerConfig struct {
	// Strategy selects random (baselines) or cost-model planning.
	Strategy Strategy
	// Delta enables late binding when positive.
	Delta int
	// CacheSize bounds the plan cache entries; 0 means 4096.
	CacheSize int
	// InlineExact makes cache misses solve the ILP synchronously after
	// returning the greedy plan, emulating the paper's background
	// worker deterministically (used by tests). When false a real
	// background goroutine performs the solve.
	InlineExact bool
	// ManualExact queues exact solves instead of spawning goroutines;
	// the owner drains the queue with UpgradePending. The discrete-event
	// simulator uses this to model the background worker's finite
	// throughput deterministically. Takes precedence over InlineExact.
	ManualExact bool
	// CacheGreedyOnMiss installs the greedy plan in the cache
	// immediately so identical requests hit before the exact solve
	// lands (it is replaced once the exact solution arrives).
	CacheGreedyOnMiss bool
	// MaxExactNodes caps branch-and-bound effort per background solve;
	// 0 means the solver default.
	MaxExactNodes int
	// Seed drives random tie-breaking.
	Seed int64
	// Metrics optionally exports plan-cache instrumentation (hit/miss/
	// greedy-fallback/ILP-upgrade counts, cache size, planning latency)
	// into a shared registry. Nil disables it.
	Metrics *obs.Registry
}

// plannerObs is the planner's instrument set; every field is nil-safe.
type plannerObs struct {
	hits      *obs.Counter
	misses    *obs.Counter
	greedy    *obs.Counter
	exact     *obs.Counter
	random    *obs.Counter
	evictions *obs.Counter
	entries   *obs.Gauge
	latency   *obs.Histogram
}

func newPlannerObs(reg *obs.Registry) plannerObs {
	if reg == nil {
		return plannerObs{}
	}
	return plannerObs{
		hits:      reg.Counter("plan_cache_hits_total", "plans served from the cache"),
		misses:    reg.Counter("plan_cache_misses_total", "requests not found in the cache"),
		greedy:    reg.Counter("plan_greedy_total", "plans served by the greedy fallback"),
		exact:     reg.Counter("plan_exact_total", "exact ILP solutions installed (background upgrades)"),
		random:    reg.Counter("plan_random_total", "plans served by the random baseline strategy"),
		evictions: reg.Counter("plan_cache_evictions_total", "cached plans dropped (capacity or invalidation)"),
		entries:   reg.Gauge("plan_cache_entries", "plans currently cached"),
		latency:   reg.Histogram("plan_seconds", "access-planning latency (cache lookup + greedy/random path)"),
	}
}

// PlannerStats counts plan provenance for instrumentation.
type PlannerStats struct {
	Hits   int64
	Misses int64
	Exact  int64
	Greedy int64
	Random int64
}

// HitRate returns cache hits / (hits+misses), or 0 when unused.
func (s PlannerStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Planner produces access plans according to a configured strategy,
// caching exact solutions as described in Section V-B1: a cache miss is
// served by the greedy heuristic while the exact ILP solution is computed
// in the background and installed for future requests.
type Planner struct {
	cfg PlannerConfig
	obs plannerObs

	mu    sync.Mutex
	rng   *rand.Rand
	cache map[string]*model.AccessPlan
	order []string // FIFO eviction order
	stats PlannerStats

	// background solve machinery (real mode).
	wg      sync.WaitGroup
	pending map[string]bool
	closed  bool

	// manual-mode solve queue (simulation mode).
	queue []pendingSolve
}

// pendingSolve is a queued exact-solve job (manual mode).
type pendingSolve struct {
	req   PlanRequest
	costs *model.SiteCosts
	key   string
}

// NewPlanner returns a planner with the given configuration.
func NewPlanner(cfg PlannerConfig) *Planner {
	if cfg.Strategy == 0 {
		cfg.Strategy = StrategyCost
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 4096
	}
	return &Planner{
		cfg:     cfg,
		obs:     newPlannerObs(cfg.Metrics),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		cache:   make(map[string]*model.AccessPlan),
		pending: make(map[string]bool),
	}
}

// Close waits for in-flight background solves to finish.
func (p *Planner) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.wg.Wait()
}

// Strategy returns the configured access strategy.
func (p *Planner) Strategy() Strategy { return p.cfg.Strategy }

// Delta returns the configured late-binding surplus.
func (p *Planner) Delta() int { return p.cfg.Delta }

// Stats returns a snapshot of provenance counters.
func (p *Planner) Stats() PlannerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// InvalidateAll drops every cached plan (called when cost parameters
// change materially, per "when the cost parameters in the ILP problem
// change as a result of new system state, we dynamically reload
// solutions").
func (p *Planner) InvalidateAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.obs.evictions.Add(int64(len(p.cache)))
	p.cache = make(map[string]*model.AccessPlan)
	p.order = nil
	p.obs.entries.Set(0)
}

// Plan produces an access plan for the request. The returned plan is a
// copy; callers may mutate it.
func (p *Planner) Plan(req PlanRequest, costs *model.SiteCosts) (*model.AccessPlan, PlanSource, error) {
	req.Delta = p.cfg.Delta
	start := time.Now()
	defer func() { p.obs.latency.ObserveSince(start) }()

	if p.cfg.Strategy == StrategyRandom {
		p.mu.Lock()
		rng := rand.New(rand.NewSource(p.rng.Int63()))
		p.stats.Random++
		p.mu.Unlock()
		p.obs.random.Inc()
		plan, err := RandomPlan(req, rng)
		if err != nil {
			return nil, SourceRandom, err
		}
		return plan, SourceRandom, nil
	}

	key := cacheKey(req)
	p.mu.Lock()
	if plan, ok := p.cache[key]; ok {
		// A cached plan may reference sites that have failed since it
		// was installed; re-validate cheaply before reuse.
		if planUsable(plan, req) {
			p.stats.Hits++
			out := plan.Clone()
			p.mu.Unlock()
			p.obs.hits.Inc()
			return out, SourceCache, nil
		}
		p.evictLocked(key)
	}
	p.stats.Misses++
	rng := rand.New(rand.NewSource(p.rng.Int63()))
	p.mu.Unlock()
	p.obs.misses.Inc()

	greedy, err := GreedyPlan(req, costs, rng)
	if err != nil {
		return nil, SourceGreedy, err
	}

	if p.cfg.CacheGreedyOnMiss {
		p.mu.Lock()
		p.installLocked(key, greedy.Clone())
		p.mu.Unlock()
	}

	switch {
	case p.cfg.ManualExact:
		p.mu.Lock()
		if !p.pending[key] && len(p.queue) < 4*p.cfg.CacheSize {
			p.pending[key] = true
			p.queue = append(p.queue, pendingSolve{req: req, costs: costs, key: key})
		}
		p.mu.Unlock()
	case p.cfg.InlineExact:
		p.solveAndInstall(req, costs, key)
	default:
		p.mu.Lock()
		if !p.pending[key] && !p.closed {
			p.pending[key] = true
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.solveAndInstall(req, costs, key)
				p.mu.Lock()
				delete(p.pending, key)
				p.mu.Unlock()
			}()
		}
		p.mu.Unlock()
	}

	p.mu.Lock()
	p.stats.Greedy++
	p.mu.Unlock()
	p.obs.greedy.Inc()
	return greedy, SourceGreedy, nil
}

// UpgradePending drains up to max queued exact solves (manual mode),
// modelling the background worker's finite throughput. It returns how many
// solves were performed.
func (p *Planner) UpgradePending(max int) int {
	done := 0
	for done < max {
		p.mu.Lock()
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return done
		}
		job := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()

		p.solveAndInstall(job.req, job.costs, job.key)
		p.mu.Lock()
		delete(p.pending, job.key)
		p.mu.Unlock()
		done++
	}
	return done
}

// PendingExact returns the number of queued exact solves (manual mode).
func (p *Planner) PendingExact() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// CacheLen returns the number of cached plans.
func (p *Planner) CacheLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cache)
}

// MemoryFootprint approximates the plan cache's live bytes (Table III
// resource accounting: the chunk read optimizer's memory is dominated by
// cached plans).
func (p *Planner) MemoryFootprint() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	const (
		keyOverhead   = 64
		perSiteEntry  = 56
		perChunkEntry = 40
	)
	bytes := 0
	for key, plan := range p.cache {
		bytes += keyOverhead + len(key)
		bytes += len(plan.Reads) * perSiteEntry
		bytes += plan.ChunkCount() * perChunkEntry
	}
	return bytes
}

// solveAndInstall computes the exact plan and installs it in the cache,
// keeping the greedy plan if the exact solve fails or is not better.
func (p *Planner) solveAndInstall(req PlanRequest, costs *model.SiteCosts, key string) {
	exact, err := ExactPlanWithNodes(req, costs, p.cfg.MaxExactNodes)
	if err != nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Exact++
	p.obs.exact.Inc()
	p.installLocked(key, exact)
}

func (p *Planner) installLocked(key string, plan *model.AccessPlan) {
	if _, exists := p.cache[key]; !exists {
		p.order = append(p.order, key)
		for len(p.order) > p.cfg.CacheSize {
			oldest := p.order[0]
			p.order = p.order[1:]
			delete(p.cache, oldest)
			p.obs.evictions.Inc()
		}
	}
	p.cache[key] = plan
	p.obs.entries.Set(int64(len(p.cache)))
}

func (p *Planner) evictLocked(key string) {
	delete(p.cache, key)
	for i, k := range p.order {
		if k == key {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	p.obs.evictions.Inc()
	p.obs.entries.Set(int64(len(p.cache)))
}

// planUsable re-checks a cached plan against current availability and
// placement (versions are part of the key, so only availability changes
// can invalidate a hit).
func planUsable(plan *model.AccessPlan, req PlanRequest) bool {
	if req.Available == nil {
		return true
	}
	for site := range plan.Reads {
		if !req.Available(site) {
			return false
		}
	}
	return true
}
