package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ecstore/internal/core"
	"ecstore/internal/model"
	"ecstore/internal/obs"
)

func newGatewayCluster(t *testing.T, gwCfg Config) (*Gateway, *core.Cluster) {
	t.Helper()
	cl, err := core.NewCluster(core.ClusterConfig{
		NumSites: 6,
		Client: core.Config{
			K: 2, R: 2, Delta: 1,
			InlineExact: true,
			StripeUnit:  1 << 10, // small stripes so PutReader streams many segments
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	gw := New(gwCfg, cl.Client)
	return gw, cl
}

// TestConcurrentTenantsSharedProxy drives many tenants through one
// pooled core.Client at once (run under -race in the full suite): the
// shared cache/breaker/hedging state must stay consistent and each
// tenant's accounting must remain isolated.
func TestConcurrentTenantsSharedProxy(t *testing.T) {
	reg := obs.NewRegistry()
	gw, _ := newGatewayCluster(t, Config{
		Metrics:     reg,
		Concurrency: 8,
		QueueDepth:  64,
		Tenants: map[string]TenantConfig{
			"throttled": {RatePerSec: 0, Burst: 3},
		},
		DefaultTenant: &TenantConfig{RatePerSec: -1},
	})
	ctx := context.Background()

	const tenants, opsPerTenant = 6, 12
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(len(name))))
			for op := 0; op < opsPerTenant; op++ {
				id := blockID(name, op)
				payload := make([]byte, 512+rng.Intn(2048))
				for b := range payload {
					payload[b] = byte(op)
				}
				if err := gw.Put(ctx, name, id, payload); err != nil {
					t.Errorf("%s put %d: %v", name, op, err)
					failures.Add(1)
					return
				}
				got, err := gw.Get(ctx, name, id)
				if err != nil {
					t.Errorf("%s get %d: %v", name, op, err)
					failures.Add(1)
					return
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("%s block %d: payload mismatch", name, op)
					failures.Add(1)
					return
				}
			}
		}()
	}
	// A rate-limited tenant competes for the same proxy concurrently.
	wg.Add(1)
	var limited atomic.Int64
	go func() {
		defer wg.Done()
		for op := 0; op < 10; op++ {
			err := gw.Put(ctx, "throttled", blockID("throttled", op), []byte("x"))
			if errors.Is(err, ErrRateLimited) {
				limited.Add(1)
			}
		}
	}()
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d tenant operations failed", failures.Load())
	}
	if got := limited.Load(); got != 7 {
		t.Fatalf("throttled tenant: %d rate-limited ops, want 7 (burst 3 of 10)", got)
	}
	snap := reg.Snapshot()
	if snap.CounterValue("gateway_admitted_total", "") == 0 {
		t.Fatal("gateway_admitted_total should be nonzero")
	}
	if snap.CounterValue("gateway_shed_total", "rate") == 0 {
		t.Fatal("gateway_shed_total{rate} should be nonzero")
	}
}

func blockID(tenant string, op int) model.BlockID {
	return model.BlockID(fmt.Sprintf("%s/blk-%d", tenant, op))
}

// TestQuotaExhaustionMidStreamRealClient streams an upload through the
// actual core.Client stripe pipeline: the quota trips partway through
// the 64 KiB body, PutReader aborts, and the rollback leaves no
// readable block behind.
func TestQuotaExhaustionMidStreamRealClient(t *testing.T) {
	gw, _ := newGatewayCluster(t, Config{
		Tenants: map[string]TenantConfig{
			"metered": {RatePerSec: -1, ByteQuota: 4 << 10},
		},
	})
	ctx := context.Background()

	body := make([]byte, 64<<10)
	_, err := gw.PutReader(ctx, "metered", "big", bytes.NewReader(body))
	if !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("err = %v, want ErrQuotaExhausted", err)
	}
	spent := gw.TenantBytes("metered")
	if spent == 0 || spent >= int64(len(body)) {
		t.Fatalf("spent %d bytes, want mid-stream cutoff in (0, %d)", spent, len(body))
	}
	// The aborted upload must not have committed; unlimited tenants see
	// no trace of it.
	def := TenantConfig{RatePerSec: -1}
	gw2 := New(Config{DefaultTenant: &def}, gwProxy(gw))
	if _, err := gw2.Get(ctx, "reader", "big"); err == nil {
		t.Fatal("aborted upload should not be readable")
	}
}

// gwProxy recovers the shared proxy from a gateway for a second front.
func gwProxy(g *Gateway) Proxy { return g.proxy }
