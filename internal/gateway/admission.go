package gateway

import (
	"context"
	"fmt"
	"sync/atomic"
)

// admission is the bounded-queue concurrency gate. Concurrency slots
// are a buffered channel; a request that finds no free slot waits in a
// queue bounded by queueDepth, and arrivals beyond that are shed
// immediately. The wait is context-aware, so a client that gives up
// releases its queue position. No goroutines, no unbounded state: under
// overload the gateway's memory footprint is Concurrency + QueueDepth
// requests, and everything else gets a fast rejection.
type admission struct {
	slots    chan struct{}
	maxQueue int64
	waiting  atomic.Int64
	// onDepth is called with the queue depth after every change; the
	// gateway points it at the health.Pressure feed and the
	// gateway_queue_depth gauge.
	onDepth func(depth int)
}

func newAdmission(concurrency, queueDepth int, onDepth func(int)) *admission {
	if concurrency <= 0 {
		concurrency = 64
	}
	if queueDepth <= 0 {
		queueDepth = 2 * concurrency
	}
	if onDepth == nil {
		onDepth = func(int) {}
	}
	return &admission{
		slots:    make(chan struct{}, concurrency),
		maxQueue: int64(queueDepth),
		onDepth:  onDepth,
	}
}

// acquire takes a concurrency slot, queueing up to the bound. It
// returns errOverloaded (shed) when the queue is full, or the context
// error if the caller gave up while queued. On success the caller must
// release().
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	n := a.waiting.Add(1)
	if n > a.maxQueue {
		a.waiting.Add(-1)
		return ErrOverloaded
	}
	a.onDepth(int(n))
	defer func() {
		a.onDepth(int(a.waiting.Add(-1)))
	}()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("gateway: abandoned admission queue: %w", ctx.Err())
	}
}

func (a *admission) release() { <-a.slots }

// queueDepth returns the current number of queued (waiting) requests.
func (a *admission) queueDepth() int { return int(a.waiting.Load()) }

// inflight returns the number of held concurrency slots.
func (a *admission) inflight() int { return len(a.slots) }
