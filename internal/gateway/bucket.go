// Package gateway is the multi-tenant access tier: a thin daemon that
// multiplexes untrusted tenant traffic over one pooled core.Client (so
// all tenants share its decoded-block cache, circuit breakers and
// hedging policy) behind per-tenant token-bucket rate limits, byte
// quotas, and admission control with a bounded queue. Overload is met
// with load shedding — a 429-style rejection the client can back off
// from — never with an unbounded queue that collapses tail latency for
// everyone (DESIGN.md §15).
//
// The package is in the determinism lint scope: all time flows through
// an injected clock and all randomness through seeded generators, so
// the same admission logic runs under the virtual-time simulator.
package gateway

import "time"

// tokenBucket is a standard token bucket with float64 tokens so
// fractional refill accumulates exactly. rate is tokens/second, burst
// the bucket capacity. A zero-rate bucket never refills: the tenant can
// spend its initial burst and is then denied forever (the "suspended
// tenant" configuration). Not safe for concurrent use — the owning
// tenant's mutex serializes access.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64, now time.Time) *tokenBucket {
	if burst < 0 {
		burst = 0
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// allow refills the bucket up to now and takes one token if available.
func (b *tokenBucket) allow(now time.Time) bool {
	if b.rate > 0 {
		dt := now.Sub(b.last).Seconds()
		if dt > 0 {
			b.tokens += b.rate * dt
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
