package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"ecstore/internal/health"
	"ecstore/internal/model"
	"ecstore/internal/obs"
)

// fakeClock is a hand-advanced clock for deterministic bucket tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// stubProxy is an in-memory Proxy. When gate is non-nil every data
// operation first announces itself on entered, then blocks until gate
// is closed — the overload tests use that to pin requests in flight.
type stubProxy struct {
	mu      sync.Mutex
	blocks  map[model.BlockID][]byte
	entered chan struct{}
	gate    chan struct{}
	// readChunk bounds each PutReader read, so quota metering sees a
	// stream of segments instead of one big read.
	readChunk int
	err       error // when non-nil, every op fails with it
}

func newStubProxy() *stubProxy {
	return &stubProxy{blocks: make(map[model.BlockID][]byte)}
}

func (p *stubProxy) wait(ctx context.Context) error {
	if p.err != nil {
		return p.err
	}
	if p.gate == nil {
		return nil
	}
	p.entered <- struct{}{}
	select {
	case <-p.gate:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *stubProxy) PutContext(ctx context.Context, id model.BlockID, data []byte) error {
	if err := p.wait(ctx); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocks[id] = append([]byte(nil), data...)
	return nil
}

func (p *stubProxy) PutReader(ctx context.Context, id model.BlockID, r io.Reader) (int64, error) {
	if err := p.wait(ctx); err != nil {
		return 0, err
	}
	chunk := p.readChunk
	if chunk <= 0 {
		chunk = 32 << 10
	}
	var buf bytes.Buffer
	seg := make([]byte, chunk)
	for {
		n, err := r.Read(seg)
		buf.Write(seg[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("stub put-reader: %w", err)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocks[id] = buf.Bytes()
	return int64(buf.Len()), nil
}

func (p *stubProxy) GetContext(ctx context.Context, id model.BlockID) ([]byte, error) {
	if err := p.wait(ctx); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	data, ok := p.blocks[id]
	if !ok {
		return nil, fmt.Errorf("stub: block %s not found", id)
	}
	return data, nil
}

func (p *stubProxy) GetRange(ctx context.Context, id model.BlockID, off, n int64) ([]byte, error) {
	data, err := p.GetContext(ctx, id)
	if err != nil {
		return nil, err
	}
	if off < 0 || off > int64(len(data)) {
		return nil, fmt.Errorf("stub: range out of bounds")
	}
	end := off + n
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	return data[off:end], nil
}

func (p *stubProxy) DeleteContext(ctx context.Context, id model.BlockID) error {
	if err := p.wait(ctx); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.blocks, id)
	return nil
}

func TestZeroRateTenant(t *testing.T) {
	clock := newFakeClock()
	gw := New(Config{
		Clock: clock.Now,
		Tenants: map[string]TenantConfig{
			// Zero rate, explicit burst: the tenant gets Burst requests
			// total — the bucket never refills.
			"drained": {RatePerSec: 0, Burst: 2},
			// Zero-value contract: fully suspended.
			"suspended": {},
		},
	}, newStubProxy())
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if err := gw.Put(ctx, "drained", "b", []byte("x")); err != nil {
			t.Fatalf("burst request %d: %v", i, err)
		}
	}
	if err := gw.Put(ctx, "drained", "b", []byte("x")); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("after burst: err = %v, want ErrRateLimited", err)
	}
	// No refill, ever: a day later the tenant is still rate limited.
	clock.Advance(24 * time.Hour)
	if err := gw.Put(ctx, "drained", "b", []byte("x")); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("after a day: err = %v, want ErrRateLimited", err)
	}

	if err := gw.Put(ctx, "suspended", "b", []byte("x")); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("suspended tenant: err = %v, want ErrRateLimited", err)
	}
}

func TestBurstThenSustain(t *testing.T) {
	clock := newFakeClock()
	reg := obs.NewRegistry()
	gw := New(Config{
		Clock:   clock.Now,
		Metrics: reg,
		Tenants: map[string]TenantConfig{
			"bursty": {RatePerSec: 10, Burst: 5},
		},
	}, newStubProxy())
	ctx := context.Background()

	// Burst: the full bucket drains back-to-back.
	for i := 0; i < 5; i++ {
		if _, err := gw.Get(ctx, "bursty", "b"); errors.Is(err, ErrRateLimited) {
			t.Fatalf("burst request %d rate limited", i)
		}
	}
	if _, err := gw.Get(ctx, "bursty", "b"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("bucket should be empty, got %v", err)
	}

	// Sustain: at 10 req/s, one token every 100ms — exactly one request
	// per tick passes.
	for tick := 0; tick < 3; tick++ {
		clock.Advance(100 * time.Millisecond)
		if _, err := gw.Get(ctx, "bursty", "b"); errors.Is(err, ErrRateLimited) {
			t.Fatalf("tick %d: sustained request rate limited", tick)
		}
		if _, err := gw.Get(ctx, "bursty", "b"); !errors.Is(err, ErrRateLimited) {
			t.Fatalf("tick %d: second request should be rate limited", tick)
		}
	}

	// A long idle period refills to burst, not beyond.
	clock.Advance(time.Hour)
	for i := 0; i < 5; i++ {
		if _, err := gw.Get(ctx, "bursty", "b"); errors.Is(err, ErrRateLimited) {
			t.Fatalf("post-idle burst request %d rate limited", i)
		}
	}
	if _, err := gw.Get(ctx, "bursty", "b"); !errors.Is(err, ErrRateLimited) {
		t.Fatal("bucket must cap at burst after idle")
	}

	snap := reg.Snapshot()
	if got := snap.CounterValue("gateway_shed_total", "rate"); got == 0 {
		t.Fatal("gateway_shed_total{rate} should be nonzero")
	}
	if got := snap.CounterValue("gateway_admitted_total", ""); got == 0 {
		t.Fatal("gateway_admitted_total should be nonzero")
	}
}

func TestUnknownTenantAndDefault(t *testing.T) {
	clock := newFakeClock()
	gw := New(Config{Clock: clock.Now}, newStubProxy())
	if _, err := gw.Get(context.Background(), "nobody", "b"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}

	def := TenantConfig{RatePerSec: 1, Burst: 1}
	gw = New(Config{Clock: clock.Now, DefaultTenant: &def}, newStubProxy())
	ctx := context.Background()
	if err := gw.Put(ctx, "alice", "b", []byte("x")); err != nil {
		t.Fatalf("default-tenant put: %v", err)
	}
	// Each unknown tenant gets its own bucket: alice spent hers, bob
	// still has his.
	if err := gw.Put(ctx, "alice", "b", []byte("x")); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("alice should be rate limited, got %v", err)
	}
	if err := gw.Put(ctx, "bob", "b", []byte("x")); err != nil {
		t.Fatalf("bob's first request: %v", err)
	}
}

func TestQuotaExhaustion(t *testing.T) {
	clock := newFakeClock()
	reg := obs.NewRegistry()
	gw := New(Config{
		Clock:   clock.Now,
		Metrics: reg,
		Tenants: map[string]TenantConfig{
			"metered": {RatePerSec: -1, ByteQuota: 1000},
		},
	}, newStubProxy())
	ctx := context.Background()

	if err := gw.Put(ctx, "metered", "a", make([]byte, 600)); err != nil {
		t.Fatalf("first put: %v", err)
	}
	// The charge that crosses the budget still lands (600 < 1000 when
	// checked), but afterwards the tenant is out.
	if err := gw.Put(ctx, "metered", "b", make([]byte, 600)); err != nil {
		t.Fatalf("crossing put: %v", err)
	}
	if err := gw.Put(ctx, "metered", "c", []byte("x")); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("exhausted put: err = %v, want ErrQuotaExhausted", err)
	}
	// Reads are rejected too: the quota covers bytes both ways.
	if _, err := gw.Get(ctx, "metered", "a"); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("exhausted get: err = %v, want ErrQuotaExhausted", err)
	}
	if got := gw.TenantBytes("metered"); got != 1200 {
		t.Fatalf("TenantBytes = %d, want 1200", got)
	}
	if got := reg.Snapshot().CounterValue("gateway_shed_total", "quota"); got == 0 {
		t.Fatal("gateway_shed_total{quota} should be nonzero")
	}
}

func TestQuotaExhaustionMidStream(t *testing.T) {
	clock := newFakeClock()
	proxy := newStubProxy()
	proxy.readChunk = 256 // stream in small segments
	gw := New(Config{
		Clock: clock.Now,
		Tenants: map[string]TenantConfig{
			"metered": {RatePerSec: -1, ByteQuota: 1000},
		},
	}, proxy)
	ctx := context.Background()

	// 4 KiB upload against a 1000-byte budget: the stream is cut off
	// mid-flight, not after the whole body lands.
	_, err := gw.PutReader(ctx, "metered", "big", bytes.NewReader(make([]byte, 4096)))
	if !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("err = %v, want ErrQuotaExhausted", err)
	}
	if _, ok := proxy.blocks["big"]; ok {
		t.Fatal("aborted upload must not be stored")
	}
	// The tenant was charged only for segments that actually streamed,
	// far less than the full 4 KiB.
	if spent := gw.TenantBytes("metered"); spent >= 4096 {
		t.Fatalf("spent %d bytes, want < 4096 (stream aborted)", spent)
	}
}

func TestOverloadShedsInsteadOfQueueing(t *testing.T) {
	clock := newFakeClock()
	reg := obs.NewRegistry()
	proxy := newStubProxy()
	proxy.blocks["b"] = []byte("v")
	proxy.entered = make(chan struct{}, 16)
	proxy.gate = make(chan struct{})
	pressure := health.NewPressure(1)
	gw := New(Config{
		Clock:       clock.Now,
		Metrics:     reg,
		Pressure:    pressure,
		Concurrency: 2,
		QueueDepth:  2,
		Tenants:     map[string]TenantConfig{"t": {RatePerSec: -1}},
	}, proxy)
	ctx := context.Background()

	var wg sync.WaitGroup
	errc := make(chan error, 4)
	// Two requests occupy both concurrency slots...
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := gw.Get(ctx, "t", "b")
			errc <- err
		}()
	}
	for i := 0; i < 2; i++ {
		<-proxy.entered // in flight, holding a slot
	}
	// ...two more wait in the bounded queue...
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := gw.Get(ctx, "t", "b")
			errc <- err
		}()
	}
	waitFor(t, func() bool { return gw.QueueDepth() == 2 })
	if !pressure.Overloaded() {
		t.Fatal("pressure must report overload while the queue is occupied")
	}

	// ...and the next arrival is shed immediately, without blocking.
	if _, err := gw.Get(ctx, "t", "b"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}

	close(proxy.gate) // drain: the queued requests proceed as slots free up
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatalf("queued request failed: %v", err)
		}
	}

	snap := reg.Snapshot()
	if got := snap.CounterValue("gateway_shed_total", "queue"); got != 1 {
		t.Fatalf("gateway_shed_total{queue} = %d, want 1", got)
	}
	if gw.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d after drain, want 0", gw.QueueDepth())
	}
}

func TestAbandonedQueueWaitReleasesPosition(t *testing.T) {
	clock := newFakeClock()
	proxy := newStubProxy()
	proxy.blocks["b"] = []byte("v")
	proxy.entered = make(chan struct{}, 16)
	proxy.gate = make(chan struct{})
	gw := New(Config{
		Clock:       clock.Now,
		Concurrency: 1,
		QueueDepth:  1,
		Tenants:     map[string]TenantConfig{"t": {RatePerSec: -1}},
	}, proxy)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = gw.Get(context.Background(), "t", "b")
	}()
	<-proxy.entered

	// A queued request whose caller gives up must free its queue slot.
	ctx, cancel := context.WithCancel(context.Background())
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := gw.Get(ctx, "t", "b")
		if !errors.Is(err, context.Canceled) {
			t.Errorf("abandoned wait: err = %v, want context.Canceled", err)
		}
	}()
	waitFor(t, func() bool { return gw.QueueDepth() == 1 })
	cancel()
	waitFor(t, func() bool { return gw.QueueDepth() == 0 })

	close(proxy.gate)
	wg.Wait()
}

// waitFor polls briefly for an asynchronous condition.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}
