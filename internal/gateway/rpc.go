package gateway

import (
	"context"
	"fmt"

	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/rpc"
	"ecstore/internal/wire"
)

// Gateway RPC methods: the native front speaks the same zero-copy frame
// protocol as the data plane, with the tenant identity carried in-band
// on every request.
const (
	methodGwPut rpc.Method = iota + 1
	methodGwGet
	methodGwRange
	methodGwDelete
	methodGwMetrics
)

// Server adapts a Gateway to the rpc.Handler interface.
type Server struct {
	gw  *Gateway
	reg *obs.Registry
}

// NewRPCServer builds the native RPC binding. reg (may be nil) backs
// the metrics method.
func NewRPCServer(gw *Gateway, reg *obs.Registry) *Server {
	return &Server{gw: gw, reg: reg}
}

// Handle dispatches one gateway RPC.
func (s *Server) Handle(ctx context.Context, method rpc.Method, body []byte) ([]byte, error) {
	d := wire.NewDecoder(body)
	switch method {
	case methodGwPut:
		// Request: tenant | key | block data as the raw trailing
		// payload (aliases the request frame; PutContext encodes chunks
		// before returning, so the frame is not retained).
		tenant := d.String()
		key := d.String()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, s.gw.Put(ctx, tenant, model.BlockID(key), d.Rest())

	case methodGwGet:
		tenant := d.String()
		key := d.String()
		if err := d.Err(); err != nil {
			return nil, err
		}
		// The block is the whole response body (vectored write).
		return s.gw.Get(ctx, tenant, model.BlockID(key))

	case methodGwRange:
		tenant := d.String()
		key := d.String()
		off := d.Uint64()
		n := d.Uint64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return s.gw.GetRange(ctx, tenant, model.BlockID(key), int64(off), int64(n))

	case methodGwDelete:
		tenant := d.String()
		key := d.String()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, s.gw.Delete(ctx, tenant, model.BlockID(key))

	case methodGwMetrics:
		if s.reg == nil {
			return nil, fmt.Errorf("gateway: metrics registry disabled")
		}
		return obs.MarshalSnapshot(s.reg.Snapshot()), nil

	default:
		return nil, fmt.Errorf("gateway: unknown method %d", method)
	}
}

// Client is the native RPC client for one tenant: a thin stub that
// carries the tenant identity on every call.
type Client struct {
	rc     *rpc.Client
	tenant string
}

// NewRPCClient wraps an rpc.Client for the given tenant.
func NewRPCClient(rc *rpc.Client, tenant string) *Client {
	return &Client{rc: rc, tenant: tenant}
}

func (c *Client) header(key model.BlockID, extra int) *wire.Encoder {
	e := wire.NewEncoder(8 + len(c.tenant) + len(key) + extra)
	e.String(c.tenant)
	e.String(string(key))
	return e
}

// Put stores a block through the gateway.
func (c *Client) Put(ctx context.Context, id model.BlockID, data []byte) error {
	e := c.header(id, 0)
	_, err := c.rc.CallContextPayload(ctx, methodGwPut, e.Bytes(), data)
	return err
}

// Get fetches a block through the gateway.
func (c *Client) Get(ctx context.Context, id model.BlockID) ([]byte, error) {
	e := c.header(id, 0)
	return c.rc.CallContext(ctx, methodGwGet, e.Bytes())
}

// GetRange fetches n bytes at offset off through the gateway.
func (c *Client) GetRange(ctx context.Context, id model.BlockID, off, n int64) ([]byte, error) {
	e := c.header(id, 16)
	e.Uint64(uint64(off))
	e.Uint64(uint64(n))
	return c.rc.CallContext(ctx, methodGwRange, e.Bytes())
}

// Delete removes a block through the gateway.
func (c *Client) Delete(ctx context.Context, id model.BlockID) error {
	e := c.header(id, 0)
	_, err := c.rc.CallContext(ctx, methodGwDelete, e.Bytes())
	return err
}

// Metrics fetches the gateway's metric snapshot.
func (c *Client) Metrics(ctx context.Context) (*obs.Snapshot, error) {
	body, err := c.rc.CallContext(ctx, methodGwMetrics, nil)
	if err != nil {
		return nil, err
	}
	return obs.UnmarshalSnapshot(body)
}
