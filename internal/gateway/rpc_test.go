package gateway

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"ecstore/internal/obs"
	"ecstore/internal/rpc"
	"ecstore/internal/transport"
)

func TestRPCFrontRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	gw := New(Config{
		Metrics:       reg,
		DefaultTenant: &TenantConfig{RatePerSec: -1},
		Tenants:       map[string]TenantConfig{"limited": {RatePerSec: 0, Burst: 0}},
	}, newStubProxy())

	mem := transport.NewMemory()
	l, err := mem.Listen("gw")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(NewRPCServer(gw, reg))
	go srv.Serve(l) //lint:ignore goleak test server torn down by srv.Close below
	t.Cleanup(func() { srv.Close() })

	conn, err := mem.Dial("gw")
	if err != nil {
		t.Fatal(err)
	}
	rcli := rpc.NewClient(conn)
	t.Cleanup(func() { rcli.Close() })
	cli := NewRPCClient(rcli, "alice")
	ctx := context.Background()

	payload := []byte("native rpc payload bytes")
	if err := cli.Put(ctx, "blk", payload); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := cli.Get(ctx, "blk")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("get = %q, want %q", got, payload)
	}
	seg, err := cli.GetRange(ctx, "blk", 7, 3)
	if err != nil {
		t.Fatalf("range: %v", err)
	}
	if string(seg) != "rpc" {
		t.Fatalf("range = %q, want %q", seg, "rpc")
	}
	if err := cli.Delete(ctx, "blk"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := cli.Get(ctx, "blk"); err == nil {
		t.Fatal("get after delete should fail")
	}

	// Admission errors cross the wire as remote errors carrying the
	// sentinel text, so clients can still distinguish shed reasons.
	lim := NewRPCClient(rcli, "limited")
	err = lim.Put(ctx, "blk", []byte("x"))
	var remote *rpc.RemoteError
	if !errors.As(err, &remote) || !strings.Contains(err.Error(), ErrRateLimited.Error()) {
		t.Fatalf("limited put err = %v, want remote rate-limit error", err)
	}

	snap, err := cli.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if snap.CounterValue("gateway_admitted_total", "") == 0 {
		t.Fatal("gateway_admitted_total should be nonzero over RPC")
	}
}
