package gateway

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ecstore/internal/health"
	"ecstore/internal/model"
	"ecstore/internal/obs"
)

// Rejection sentinels. The HTTP front maps these onto status codes
// (429/403) and the native RPC front carries them as remote errors; in
// process they compose with errors.Is.
var (
	// ErrRateLimited means the tenant's token bucket is empty.
	ErrRateLimited = errors.New("gateway: tenant rate limit exceeded")
	// ErrOverloaded means the admission queue is full: the gateway shed
	// the request instead of queueing it (back off and retry).
	ErrOverloaded = errors.New("gateway: overloaded, request shed")
	// ErrQuotaExhausted means the tenant spent its byte quota.
	ErrQuotaExhausted = errors.New("gateway: tenant byte quota exhausted")
	// ErrUnknownTenant means the tenant is not configured and the
	// gateway has no default tenant policy.
	ErrUnknownTenant = errors.New("gateway: unknown tenant")
)

// Proxy is the slice of core.Client the gateway drives. One Proxy is
// shared by every tenant, so they pool its connections, decoded-block
// cache, circuit breakers and hedging policy.
type Proxy interface {
	PutContext(ctx context.Context, id model.BlockID, data []byte) error
	PutReader(ctx context.Context, id model.BlockID, r io.Reader) (int64, error)
	GetContext(ctx context.Context, id model.BlockID) ([]byte, error)
	GetRange(ctx context.Context, id model.BlockID, off, n int64) ([]byte, error)
	DeleteContext(ctx context.Context, id model.BlockID) error
}

// Config tunes a Gateway.
type Config struct {
	// Tenants maps tenant names to their QoS contracts.
	Tenants map[string]TenantConfig
	// DefaultTenant, when non-nil, is the contract applied to tenants
	// not listed in Tenants (each unknown name gets its own bucket and
	// quota on first use). Nil rejects unknown tenants.
	DefaultTenant *TenantConfig
	// Concurrency is how many requests run against the proxy at once.
	// Zero means 64.
	Concurrency int
	// QueueDepth bounds how many admitted requests may wait for a
	// concurrency slot; arrivals beyond it are shed. Zero means
	// 2*Concurrency.
	QueueDepth int
	// Clock abstracts time for deterministic tests; nil uses time.Now.
	Clock func() time.Time
	// Metrics optionally exports the gateway_* family. Nil disables it.
	Metrics *obs.Registry
	// Pressure receives queue-depth and shed signals so the core client
	// can suppress hedging under access-tier overload. Nil allocates a
	// private one (reachable via Pressure()).
	Pressure *health.Pressure
}

// gatewayObs is the gateway's instrument set; every field is nil-safe.
type gatewayObs struct {
	requests   *obs.CounterVec
	admitted   *obs.Counter
	shed       *obs.CounterVec
	queueDepth *obs.Gauge
	inflight   *obs.Gauge
	latency    *obs.HistogramVec
	proxyErrs  *obs.CounterVec
	bytesIn    *obs.Counter
	bytesOut   *obs.Counter
}

func newGatewayObs(reg *obs.Registry) gatewayObs {
	if reg == nil {
		return gatewayObs{}
	}
	return gatewayObs{
		requests:   reg.CounterVec("gateway_requests_total", "op", "requests arriving at the gateway by operation"),
		admitted:   reg.Counter("gateway_admitted_total", "requests that passed rate, quota and queue admission"),
		shed:       reg.CounterVec("gateway_shed_total", "reason", "requests rejected by admission control (rate|queue|quota|tenant)"),
		queueDepth: reg.Gauge("gateway_queue_depth", "admitted requests waiting for a concurrency slot"),
		inflight:   reg.Gauge("gateway_inflight", "requests currently running against the proxy client"),
		latency:    reg.HistogramVec("gateway_request_seconds", "op", "gateway request latency including queue wait"),
		proxyErrs:  reg.CounterVec("gateway_proxy_errors_total", "op", "admitted requests that failed in the proxy client"),
		bytesIn:    reg.Counter("gateway_bytes_in_total", "payload bytes received from tenants"),
		bytesOut:   reg.Counter("gateway_bytes_out_total", "payload bytes returned to tenants"),
	}
}

// Gateway is the multi-tenant access tier over one shared Proxy.
// All methods are safe for concurrent use.
type Gateway struct {
	cfg      Config
	proxy    Proxy
	adm      *admission
	pressure *health.Pressure
	obs      gatewayObs

	mu      sync.Mutex
	tenants map[string]*tenant
}

// New builds a gateway over the shared proxy client.
func New(cfg Config, proxy Proxy) *Gateway {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Pressure == nil {
		cfg.Pressure = health.NewPressure(1)
	}
	g := &Gateway{
		cfg:      cfg,
		proxy:    proxy,
		pressure: cfg.Pressure,
		obs:      newGatewayObs(cfg.Metrics),
		tenants:  make(map[string]*tenant),
	}
	g.adm = newAdmission(cfg.Concurrency, cfg.QueueDepth, func(depth int) {
		g.pressure.SetQueueDepth(depth)
		g.obs.queueDepth.Set(int64(depth))
	})
	now := g.now()
	names := make([]string, 0, len(cfg.Tenants))
	for name := range cfg.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g.tenants[name] = newTenant(name, cfg.Tenants[name], now)
	}
	return g
}

func (g *Gateway) now() time.Time { return g.cfg.Clock() }

// Pressure exposes the access-tier load feed, for wiring into
// core.Deps.Pressure so hedging sees gateway overload.
func (g *Gateway) Pressure() *health.Pressure { return g.pressure }

// QueueDepth returns the current admission-queue depth.
func (g *Gateway) QueueDepth() int { return g.adm.queueDepth() }

// Inflight returns how many requests currently hold proxy slots.
func (g *Gateway) Inflight() int { return g.adm.inflight() }

// TenantBytes returns the quota bytes a tenant has spent so far (0 for
// tenants that never connected).
func (g *Gateway) TenantBytes(name string) int64 {
	g.mu.Lock()
	t := g.tenants[name]
	g.mu.Unlock()
	if t == nil {
		return 0
	}
	return t.bytesSpent()
}

// tenantFor resolves a tenant, instantiating the default contract for
// unknown names when one is configured.
func (g *Gateway) tenantFor(name string) (*tenant, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if t, ok := g.tenants[name]; ok {
		return t, nil
	}
	if g.cfg.DefaultTenant == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	t := newTenant(name, *g.cfg.DefaultTenant, g.now())
	g.tenants[name] = t
	return t, nil
}

func (g *Gateway) shed(reason string) {
	g.obs.shed.With(reason).Inc()
	g.pressure.ReportShed()
}

// admit runs the full admission pipeline for one request: tenant
// resolution, token-bucket rate check, quota-exhaustion check, then the
// bounded-queue slot acquire. On success the caller owns a concurrency
// slot and must call release().
func (g *Gateway) admit(ctx context.Context, tenantName, op string) (*tenant, func(), error) {
	g.obs.requests.With(op).Inc()
	t, err := g.tenantFor(tenantName)
	if err != nil {
		g.shed("tenant")
		return nil, nil, err
	}
	if !t.allowRequest(g.now()) {
		g.shed("rate")
		return nil, nil, fmt.Errorf("%w: tenant %q", ErrRateLimited, tenantName)
	}
	// chargeBytes(0) is a pure budget probe: reject before queueing if
	// the tenant has nothing left to spend.
	if !t.chargeBytes(0) {
		g.shed("quota")
		return nil, nil, fmt.Errorf("%w: tenant %q", ErrQuotaExhausted, tenantName)
	}
	if err := g.adm.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			g.shed("queue")
		}
		return nil, nil, err
	}
	g.obs.admitted.Inc()
	g.pressure.ReportAdmitted()
	g.obs.inflight.Set(int64(g.adm.inflight()))
	release := func() {
		g.adm.release()
		g.obs.inflight.Set(int64(g.adm.inflight()))
	}
	return t, release, nil
}

func (g *Gateway) observe(op string, start time.Time, err error) {
	g.obs.latency.With(op).Observe(g.now().Sub(start).Seconds())
	if err != nil {
		g.obs.proxyErrs.With(op).Inc()
	}
}

// Put stores a whole block for a tenant.
func (g *Gateway) Put(ctx context.Context, tenantName string, id model.BlockID, data []byte) error {
	start := g.now()
	t, release, err := g.admit(ctx, tenantName, "put")
	if err != nil {
		return err
	}
	defer release()
	if !t.chargeBytes(int64(len(data))) {
		g.shed("quota")
		return fmt.Errorf("%w: tenant %q", ErrQuotaExhausted, tenantName)
	}
	g.obs.bytesIn.Add(int64(len(data)))
	err = g.proxy.PutContext(ctx, id, data)
	g.observe("put", start, err)
	return err
}

// PutReader streams a block in for a tenant. Quota is charged as bytes
// arrive, so a tenant that exhausts its budget mid-stream has the
// upload aborted (the proxy client rolls back partial chunks) instead
// of getting the tail for free.
func (g *Gateway) PutReader(ctx context.Context, tenantName string, id model.BlockID, r io.Reader) (int64, error) {
	start := g.now()
	t, release, err := g.admit(ctx, tenantName, "put")
	if err != nil {
		return 0, err
	}
	defer release()
	qr := &quotaReader{r: r, t: t, obs: &g.obs}
	n, err := g.proxy.PutReader(ctx, id, qr)
	if qr.exhausted {
		g.shed("quota")
		err = fmt.Errorf("%w: tenant %q mid-stream: %w", ErrQuotaExhausted, tenantName, err)
	}
	g.observe("put", start, err)
	return n, err
}

// quotaReader meters an upload against the tenant's byte quota.
type quotaReader struct {
	r         io.Reader
	t         *tenant
	obs       *gatewayObs
	exhausted bool
}

func (q *quotaReader) Read(p []byte) (int, error) {
	n, err := q.r.Read(p)
	if n > 0 {
		q.obs.bytesIn.Add(int64(n))
		if !q.t.chargeBytes(int64(n)) {
			q.exhausted = true
			return 0, ErrQuotaExhausted
		}
	}
	return n, err
}

// Get fetches a whole block for a tenant.
func (g *Gateway) Get(ctx context.Context, tenantName string, id model.BlockID) ([]byte, error) {
	start := g.now()
	t, release, err := g.admit(ctx, tenantName, "get")
	if err != nil {
		return nil, err
	}
	defer release()
	data, err := g.proxy.GetContext(ctx, id)
	if err == nil {
		g.obs.bytesOut.Add(int64(len(data)))
		t.chargeBytes(int64(len(data)))
	}
	g.observe("get", start, err)
	return data, err
}

// GetRange fetches n bytes at offset off of a block for a tenant.
func (g *Gateway) GetRange(ctx context.Context, tenantName string, id model.BlockID, off, n int64) ([]byte, error) {
	start := g.now()
	t, release, err := g.admit(ctx, tenantName, "range")
	if err != nil {
		return nil, err
	}
	defer release()
	data, err := g.proxy.GetRange(ctx, id, off, n)
	if err == nil {
		g.obs.bytesOut.Add(int64(len(data)))
		t.chargeBytes(int64(len(data)))
	}
	g.observe("range", start, err)
	return data, err
}

// Delete removes a block for a tenant.
func (g *Gateway) Delete(ctx context.Context, tenantName string, id model.BlockID) error {
	start := g.now()
	_, release, err := g.admit(ctx, tenantName, "delete")
	if err != nil {
		return err
	}
	defer release()
	err = g.proxy.DeleteContext(ctx, id)
	g.observe("delete", start, err)
	return err
}
