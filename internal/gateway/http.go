package gateway

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
)

// TenantHeader names the HTTP header carrying the tenant identity.
// Requests without it run as the "default" tenant.
const TenantHeader = "X-EC-Tenant"

const blocksPrefix = "/v1/blocks/"

// NewHTTPHandler serves the gateway's HTTP front:
//
//	PUT    /v1/blocks/<key>              store a block (streamed body)
//	GET    /v1/blocks/<key>[?off=&len=]  fetch a block or a byte range
//	DELETE /v1/blocks/<key>              delete a block
//	GET    /healthz                      liveness probe
//	GET    /metrics, /traces             obs dump (when reg is non-nil)
//
// Admission rejections map onto backpressure statuses a client can act
// on: 429 + Retry-After for rate-limit and queue sheds, 403 for a spent
// quota or an unknown tenant — never a hung connection.
func NewHTTPHandler(g *Gateway, reg *obs.Registry, tracer *obs.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if reg != nil {
		mux.Handle("/metrics", obs.Handler(reg, tracer))
		mux.Handle("/traces", obs.Handler(reg, tracer))
	}
	mux.HandleFunc(blocksPrefix, func(w http.ResponseWriter, r *http.Request) {
		serveBlock(g, w, r)
	})
	return mux
}

func serveBlock(g *Gateway, w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, blocksPrefix)
	if key == "" || strings.Contains(key, "/") {
		http.Error(w, "gateway: want /v1/blocks/<key>", http.StatusBadRequest)
		return
	}
	tenantName := r.Header.Get(TenantHeader)
	if tenantName == "" {
		tenantName = "default"
	}
	ctx := r.Context()
	id := model.BlockID(key)

	switch r.Method {
	case http.MethodPut, http.MethodPost:
		n, err := g.PutReader(ctx, tenantName, id, r.Body)
		if err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, "stored %d bytes\n", n)

	case http.MethodGet:
		data, err := getMaybeRange(g, r, tenantName, id)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)

	case http.MethodDelete:
		if err := g.Delete(ctx, tenantName, id); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)

	default:
		http.Error(w, "gateway: method not allowed", http.StatusMethodNotAllowed)
	}
}

func getMaybeRange(g *Gateway, r *http.Request, tenantName string, id model.BlockID) ([]byte, error) {
	q := r.URL.Query()
	offS, lenS := q.Get("off"), q.Get("len")
	if offS == "" && lenS == "" {
		return g.Get(r.Context(), tenantName, id)
	}
	off, err := strconv.ParseInt(offS, 10, 64)
	if err != nil && offS != "" {
		return nil, errBadRequest{fmt.Errorf("gateway: bad off: %w", err)}
	}
	n, err := strconv.ParseInt(lenS, 10, 64)
	if err != nil {
		return nil, errBadRequest{fmt.Errorf("gateway: bad len: %w", err)}
	}
	return g.GetRange(r.Context(), tenantName, id, off, n)
}

// errBadRequest marks a client-side parameter error for status mapping.
type errBadRequest struct{ err error }

func (e errBadRequest) Error() string { return e.err.Error() }
func (e errBadRequest) Unwrap() error { return e.err }

// isNotFound matches metadata.ErrNotFound both in-process and across
// the RPC boundary, where the sentinel arrives flattened into a
// *rpc.RemoteError message.
func isNotFound(err error) bool {
	return errors.Is(err, metadata.ErrNotFound) ||
		strings.Contains(err.Error(), metadata.ErrNotFound.Error())
}

func writeError(w http.ResponseWriter, err error) {
	var bad errBadRequest
	switch {
	case errors.Is(err, ErrRateLimited), errors.Is(err, ErrOverloaded):
		// 429 with Retry-After is the shed contract: the client backs
		// off instead of piling onto the queue.
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrQuotaExhausted), errors.Is(err, ErrUnknownTenant):
		http.Error(w, err.Error(), http.StatusForbidden)
	case errors.As(err, &bad):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case isNotFound(err):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}
