package gateway

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ecstore/internal/metadata"
	"ecstore/internal/obs"
)

func newHTTPGateway(t *testing.T, proxy Proxy, cfg Config) *httptest.Server {
	t.Helper()
	reg := cfg.Metrics
	gw := New(cfg, proxy)
	srv := httptest.NewServer(NewHTTPHandler(gw, reg, nil))
	t.Cleanup(srv.Close)
	return srv
}

func doReq(t *testing.T, method, url, tenant string, body io.Reader) *http.Response {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHTTPRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	proxy := newStubProxy()
	srv := newHTTPGateway(t, proxy, Config{
		Metrics:       reg,
		DefaultTenant: &TenantConfig{RatePerSec: -1},
	})

	payload := []byte("hello, erasure-coded world")
	resp := doReq(t, http.MethodPut, srv.URL+"/v1/blocks/greeting", "alice", bytes.NewReader(payload))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d, want 201", resp.StatusCode)
	}

	resp = doReq(t, http.MethodGet, srv.URL+"/v1/blocks/greeting", "alice", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d, want 200", resp.StatusCode)
	}
	got, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(got, payload) {
		t.Fatalf("GET body = %q, want %q", got, payload)
	}

	// Range read via query parameters.
	resp = doReq(t, http.MethodGet, srv.URL+"/v1/blocks/greeting?off=7&len=7", "alice", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range GET status = %d, want 200", resp.StatusCode)
	}
	got, _ = io.ReadAll(resp.Body)
	if string(got) != "erasure" {
		t.Fatalf("range GET body = %q, want %q", got, "erasure")
	}

	resp = doReq(t, http.MethodDelete, srv.URL+"/v1/blocks/greeting", "alice", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status = %d, want 204", resp.StatusCode)
	}
	if _, ok := proxy.blocks["greeting"]; ok {
		t.Fatal("block should be deleted")
	}

	// The admitted counter is visible on the gateway's own /metrics.
	resp = doReq(t, http.MethodGet, srv.URL+"/metrics", "", nil)
	text, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(text), "gateway_admitted_total") {
		t.Fatal("/metrics should expose gateway_admitted_total")
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	proxy := newStubProxy()
	srv := newHTTPGateway(t, proxy, Config{
		Tenants: map[string]TenantConfig{
			"limited": {RatePerSec: 0, Burst: 1},
			"metered": {RatePerSec: -1, ByteQuota: 4},
			"open":    {RatePerSec: -1},
		},
	})

	// Rate limit -> 429 with Retry-After.
	resp := doReq(t, http.MethodGet, srv.URL+"/v1/blocks/x", "limited", nil)
	resp = doReq(t, http.MethodGet, srv.URL+"/v1/blocks/x", "limited", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}

	// Quota exhausted -> 403 (the first PUT's crossing charge lands,
	// the second request finds the budget spent).
	resp = doReq(t, http.MethodPut, srv.URL+"/v1/blocks/q", "metered", strings.NewReader("12345678"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("crossing PUT status = %d, want 201", resp.StatusCode)
	}
	resp = doReq(t, http.MethodPut, srv.URL+"/v1/blocks/q2", "metered", strings.NewReader("x"))
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("quota PUT status = %d, want 403", resp.StatusCode)
	}

	// Unknown tenant (no default policy) -> 403.
	resp = doReq(t, http.MethodGet, srv.URL+"/v1/blocks/x", "stranger", nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unknown tenant status = %d, want 403", resp.StatusCode)
	}

	// Not found (flattened through the RPC boundary) -> 404.
	proxy.err = metadata.ErrNotFound
	resp = doReq(t, http.MethodGet, srv.URL+"/v1/blocks/missing", "open", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("not-found status = %d, want 404", resp.StatusCode)
	}
	proxy.err = nil

	// Bad range parameters -> 400.
	resp = doReq(t, http.MethodGet, srv.URL+"/v1/blocks/x?off=zero&len=nope", "open", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-range status = %d, want 400", resp.StatusCode)
	}

	// Missing key -> 400; bad method -> 405.
	resp = doReq(t, http.MethodGet, srv.URL+"/v1/blocks/", "open", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty-key status = %d, want 400", resp.StatusCode)
	}
	resp = doReq(t, http.MethodPatch, srv.URL+"/v1/blocks/x", "open", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PATCH status = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPQuotaMidStream(t *testing.T) {
	proxy := newStubProxy()
	proxy.readChunk = 128
	srv := newHTTPGateway(t, proxy, Config{
		Tenants: map[string]TenantConfig{
			"metered": {RatePerSec: -1, ByteQuota: 300},
		},
	})
	resp := doReq(t, http.MethodPut, srv.URL+"/v1/blocks/big", "metered",
		bytes.NewReader(make([]byte, 4096)))
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("mid-stream quota status = %d, want 403", resp.StatusCode)
	}
	if _, ok := proxy.blocks["big"]; ok {
		t.Fatal("aborted upload must not be stored")
	}
}
