package gateway

import (
	"sync"
	"time"
)

// TenantConfig is the QoS contract for one tenant.
type TenantConfig struct {
	// RatePerSec is the request rate limit. Negative means unlimited;
	// zero means no refill — the tenant gets Burst requests total and is
	// then rejected (a suspended tenant).
	RatePerSec float64
	// Burst is the token-bucket capacity. Zero defaults to
	// max(RatePerSec, 1) so a plain {RatePerSec: 100} config behaves
	// sensibly; set it explicitly to shape burst tolerance.
	Burst float64
	// ByteQuota is a cumulative byte budget covering payload bytes in
	// both directions (PUT bodies charged as they stream in, GET
	// responses as they go out). Zero means unlimited. Once spent the
	// tenant's requests are rejected with ErrQuotaExhausted — including
	// mid-stream, aborting the upload.
	ByteQuota int64
}

// Unlimited is a TenantConfig with no rate limit and no quota.
func Unlimited() TenantConfig { return TenantConfig{RatePerSec: -1} }

// tenant is the runtime state for one tenant. The mutex only guards
// short token/quota arithmetic — never I/O.
type tenant struct {
	name string
	cfg  TenantConfig

	mu        sync.Mutex
	bucket    *tokenBucket // nil when rate is unlimited
	bytesUsed int64
}

func newTenant(name string, cfg TenantConfig, now time.Time) *tenant {
	t := &tenant{name: name, cfg: cfg}
	if cfg.RatePerSec >= 0 {
		burst := cfg.Burst
		if burst <= 0 {
			burst = cfg.RatePerSec
			if burst < 1 {
				burst = 1
			}
			if cfg.RatePerSec == 0 && cfg.Burst == 0 {
				// Explicit zero-rate zero-burst: fully suspended.
				burst = 0
			}
		}
		t.bucket = newTokenBucket(cfg.RatePerSec, burst, now)
	}
	return t
}

// allowRequest takes one rate token, or reports the request must be shed.
func (t *tenant) allowRequest(now time.Time) bool {
	if t.bucket == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bucket.allow(now)
}

// chargeBytes spends n bytes of quota; it reports false once the budget
// is exceeded. The charge that crosses the limit still lands, so the
// accounting reflects bytes actually moved before the cutoff.
func (t *tenant) chargeBytes(n int64) bool {
	if t.cfg.ByteQuota <= 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bytesUsed >= t.cfg.ByteQuota {
		return false
	}
	t.bytesUsed += n
	return true
}

func (t *tenant) quotaLeft() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	left := t.cfg.ByteQuota - t.bytesUsed
	if left < 0 {
		return 0
	}
	return left
}

// bytesSpent returns the cumulative quota bytes charged.
func (t *tenant) bytesSpent() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytesUsed
}
