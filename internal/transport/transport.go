// Package transport abstracts how EC-Store services reach each other: over
// real TCP for multi-process deployments, or over an in-process memory
// network for single-process clusters, tests and examples. The memory
// network can inject one-way latency and jitter to emulate a LAN.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ecstore/internal/obs"
)

// Network creates listeners and dials addresses.
type Network interface {
	// Listen binds the address and returns a listener.
	Listen(addr string) (net.Listener, error)
	// Dial connects to a previously bound address.
	Dial(addr string) (net.Conn, error)
	// DialContext connects to a previously bound address, honoring the
	// context's deadline and cancellation.
	DialContext(ctx context.Context, addr string) (net.Conn, error)
}

// Errors returned by the memory network.
var (
	ErrAddrInUse   = errors.New("transport: address already bound")
	ErrConnRefused = errors.New("transport: connection refused")
	ErrNetClosed   = errors.New("transport: network closed")
)

// Metrics instruments a Network implementation. Nil disables collection.
type Metrics struct {
	// Dials counts outbound connection attempts; DialErrors the failures.
	Dials      *obs.Counter
	DialErrors *obs.Counter
	// Accepts counts inbound connections handed out by listeners.
	Accepts *obs.Counter
}

// NewMetrics registers the transport instrument set (transport_dials_total,
// transport_dial_errors_total, transport_accepts_total). A nil registry
// yields nil, which disables instrumentation.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Dials:      reg.Counter("transport_dials_total", "outbound connection attempts"),
		DialErrors: reg.Counter("transport_dial_errors_total", "failed outbound connection attempts"),
		Accepts:    reg.Counter("transport_accepts_total", "inbound connections accepted"),
	}
}

func (m *Metrics) dial(err error) {
	if m == nil {
		return
	}
	m.Dials.Inc()
	if err != nil {
		m.DialErrors.Inc()
	}
}

func (m *Metrics) accept() {
	if m == nil {
		return
	}
	m.Accepts.Inc()
}

// tcpBufferSize sizes kernel socket buffers to hold a full chunk frame
// (1 MB blocks => 512 KB chunks plus headers) so a vectored chunk write
// drains in one burst instead of stalling on the default buffer every
// bandwidth-delay product. Failures are ignored: the setting is a
// tuning hint and some environments cap SO_SNDBUF/SO_RCVBUF.
const tcpBufferSize = 1 << 20

func tuneTCP(c net.Conn) net.Conn {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(tcpBufferSize)
		_ = tc.SetWriteBuffer(tcpBufferSize)
		_ = tc.SetNoDelay(true) // Go's default, restated: frames are already batched
	}
	return c
}

// countedListener wraps a listener to count accepted connections and
// tune their sockets for chunk traffic.
type countedListener struct {
	net.Listener
	metrics *Metrics
}

func (l countedListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.metrics.accept()
		c = tuneTCP(c)
	}
	return c, err
}

// TCP is the real-network implementation.
type TCP struct {
	// DialTimeout bounds connection establishment; zero means 5s.
	DialTimeout time.Duration
	// Metrics optionally counts dials and accepts.
	Metrics *Metrics
}

var _ Network = (*TCP)(nil)

// Listen binds a TCP address such as "127.0.0.1:7070".
func (t *TCP) Listen(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	// Always wrapped (metrics are nil-safe) so accepted sockets get the
	// chunk-frame buffer tuning.
	return countedListener{Listener: l, metrics: t.Metrics}, nil
}

// Dial connects to a TCP address.
func (t *TCP) Dial(addr string) (net.Conn, error) {
	timeout := t.DialTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	t.Metrics.dial(err)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	return tuneTCP(conn), nil
}

// DialContext connects to a TCP address under a context. The configured
// DialTimeout still applies as an upper bound on top of the context.
func (t *TCP) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	timeout := t.DialTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	t.Metrics.dial(err)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	return tuneTCP(conn), nil
}

// Memory is an in-process network: addresses are arbitrary strings, and
// connections are synchronous net.Pipe pairs. It is safe for concurrent
// use.
type Memory struct {
	metrics *Metrics

	// DialTimeout bounds how long Dial waits for the listener to accept
	// before giving up with ErrConnRefused. A bound listener whose owner
	// never calls Accept would otherwise hang dialers forever. Zero means
	// 5s.
	DialTimeout time.Duration

	mu        sync.Mutex
	listeners map[string]*memListener
	closed    bool
}

var _ Network = (*Memory)(nil)

// NewMemory returns an empty memory network.
func NewMemory() *Memory {
	return &Memory{listeners: make(map[string]*memListener)}
}

// SetMetrics attaches instrumentation (nil disables it).
func (m *Memory) SetMetrics(metrics *Metrics) { m.metrics = metrics }

// Listen binds addr on the memory network.
func (m *Memory) Listen(addr string) (net.Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrNetClosed
	}
	if _, exists := m.listeners[addr]; exists {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &memListener{
		net:   m,
		addr:  addr,
		conns: make(chan net.Conn),
		done:  make(chan struct{}),
	}
	m.listeners[addr] = l
	return l, nil
}

// Dial connects to a bound address. If the listener exists but nobody
// accepts within DialTimeout, Dial fails with ErrConnRefused instead of
// blocking forever.
//
//lint:ignore ctxfirst Network's context-free Dial entry point; the dial is bounded by DialTimeout
func (m *Memory) Dial(addr string) (net.Conn, error) {
	timeout := m.DialTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return m.DialContext(ctx, addr)
}

// DialContext connects to a bound address, waiting for the listener to
// accept until the context is done.
func (m *Memory) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrNetClosed
	}
	l := m.listeners[addr]
	m.mu.Unlock()
	if l == nil {
		m.metrics.dial(ErrConnRefused)
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		m.metrics.dial(nil)
		m.metrics.accept()
		return client, nil
	case <-l.done:
		_ = client.Close()
		_ = server.Close()
		m.metrics.dial(ErrConnRefused)
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	case <-ctx.Done():
		_ = client.Close()
		_ = server.Close()
		m.metrics.dial(ErrConnRefused)
		return nil, fmt.Errorf("%w: %s (accept queue timeout: %w)", ErrConnRefused, addr, ctx.Err())
	}
}

// Close shuts the whole memory network down.
func (m *Memory) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	ls := make([]*memListener, 0, len(m.listeners))
	for _, l := range m.listeners {
		ls = append(ls, l)
	}
	m.listeners = make(map[string]*memListener)
	m.mu.Unlock()
	for _, l := range ls {
		l.closeOnce()
	}
}

type memListener struct {
	net   *Memory
	addr  string
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

var _ net.Listener = (*memListener)(nil)

//lint:ignore ctxfirst Accept implements net.Listener; unblocked by Close, matching net.TCPListener
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.net.mu.Lock()
	if l.net.listeners[l.addr] == l {
		delete(l.net.listeners, l.addr)
	}
	l.net.mu.Unlock()
	l.closeOnce()
	return nil
}

func (l *memListener) closeOnce() {
	l.once.Do(func() { close(l.done) })
}

func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }
