package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

func TestMemoryDialListen(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	l, err := m.Listen("alpha")
	if err != nil {
		t.Fatal(err)
	}

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()

	client, err := m.Dial("alpha")
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted

	go func() {
		_, _ = client.Write([]byte("hi"))
	}()
	buf := make([]byte, 2)
	if _, err := server.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hi" {
		t.Fatalf("read %q", buf)
	}
	_ = client.Close()
	_ = server.Close()
}

func TestMemoryDialUnbound(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	if _, err := m.Dial("nowhere"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
}

// TestMemoryDialNoAcceptor is the regression test for Dial hanging forever
// when the address is bound but the owner never calls Accept: it must fail
// with ErrConnRefused once the accept-queue timeout expires.
func TestMemoryDialNoAcceptor(t *testing.T) {
	m := NewMemory()
	m.DialTimeout = 30 * time.Millisecond
	defer m.Close()
	if _, err := m.Listen("deaf"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := m.Dial("deaf"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dial blocked %v despite timeout", elapsed)
	}
}

// TestMemoryDialContextCanceled verifies DialContext honors cancellation
// while waiting on the accept queue.
func TestMemoryDialContextCanceled(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	if _, err := m.Listen("deaf"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := m.DialContext(ctx, "deaf")
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrConnRefused) {
			t.Fatalf("err = %v, want ErrConnRefused", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("DialContext ignored cancellation")
	}
}

func TestMemoryDoubleBind(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	if _, err := m.Listen("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Listen("a"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("err = %v, want ErrAddrInUse", err)
	}
}

func TestMemoryListenerClose(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	l, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Accept after close = %v", err)
	}
	// Address becomes reusable.
	if _, err := m.Listen("a"); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	// Dialing a closed (replaced) listener's address reaches the new one.
}

func TestMemoryDialAfterListenerClose(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	l, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Close()
	if _, err := m.Dial("a"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
}

func TestMemoryNetworkClose(t *testing.T) {
	m := NewMemory()
	l, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := l.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Accept = %v", err)
	}
	if _, err := m.Dial("a"); !errors.Is(err, ErrNetClosed) {
		t.Fatalf("Dial = %v, want ErrNetClosed", err)
	}
	if _, err := m.Listen("b"); !errors.Is(err, ErrNetClosed) {
		t.Fatalf("Listen = %v, want ErrNetClosed", err)
	}
	m.Close() // idempotent
}

func TestMemoryAddr(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	l, err := m.Listen("svc-addr")
	if err != nil {
		t.Fatal(err)
	}
	if l.Addr().Network() != "mem" || l.Addr().String() != "svc-addr" {
		t.Fatalf("addr = %v/%v", l.Addr().Network(), l.Addr().String())
	}
}

func TestTCPDialTimeout(t *testing.T) {
	tcp := &TCP{DialTimeout: 50 * time.Millisecond}
	// Dial a reserved, unroutable address: must fail, not hang.
	start := time.Now()
	conn, err := tcp.Dial("192.0.2.1:9")
	if err == nil {
		// Some sandboxed environments route TEST-NET addresses; the
		// timeout behaviour cannot be observed there.
		_ = conn.Close()
		t.Skip("environment routes TEST-NET addresses")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial took %v despite timeout", elapsed)
	}
}

func TestTCPListenBadAddr(t *testing.T) {
	tcp := &TCP{}
	if _, err := tcp.Listen("256.256.256.256:1"); err == nil {
		t.Fatal("listen on invalid address succeeded")
	}
}
