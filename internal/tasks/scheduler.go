// Package tasks is EC-Store's unified background task scheduler: one
// throttled execution plane for everything that competes with foreground
// reads for site I/O — repair, chunk movement, scrubbing, drains. It
// replaces the bespoke repair and mover loops (ROADMAP item 5) with a
// single priority queue the control plane and CLIs share.
//
// Design:
//
//   - Tasks are model.TaskRecord rows persisted in the metadata catalog
//     (the Store interface). The scheduler owns no private queue state
//     that matters across a crash: a restart re-reads the store, flips
//     Running rows back to Pending (every task type is re-entrant from
//     its Cursor), and continues. Done rows stay Done — a completed task
//     never runs twice after resume.
//
//   - Admission is by priority (higher first), then FIFO by creation
//     time, then ID, under two caps: GlobalSlots concurrent tasks and
//     SiteSlots per site, so one site's repair storm cannot monopolize
//     the plane and a scrub cannot double-book a site being drained.
//
//   - Byte throttling is a shared token bucket: executors call
//     Ctx.Throttle(bytes) before chunk-sized I/O, which spreads
//     background bytes over time instead of bursting them into the
//     foreground tail (the joint-scheduling lesson from Xiang et al.).
//
//   - Time is injected. The package never reads the wall clock or the
//     global rand source (enforced by internal/lint's determinism rule),
//     so the scheduler runs byte-identically under internal/sim virtual
//     time and the chaos harness.
//
// Periodic work (repair probe sweeps, mover planning rounds, scrub
// scheduling) enters through sources: named closures run at a fixed
// cadence at the top of each pass, enqueueing whatever tasks they find
// due. Source-enqueued IDs are stable, and Enqueue deduplicates against
// live rows, so a sweep that fires twice enqueues once.
package tasks

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/obs"
)

// Store is the durable task table the scheduler coordinates through —
// implemented by metadata.Service (catalog or RPC client).
type Store interface {
	PutTask(t *model.TaskRecord) error
	ListTasks() []*model.TaskRecord
	DeleteTask(id string) error
}

// Ctx is the execution context handed to task executors: the caller's
// context plus the scheduler's throttle and cursor-persistence hooks.
type Ctx struct {
	context.Context
	s   *Scheduler
	rec *model.TaskRecord
}

// Record returns the task being executed. Executors may read payload
// fields and Cursor; mutations beyond SaveCursor are not persisted.
func (c *Ctx) Record() *model.TaskRecord { return c.rec }

// SaveCursor persists resumable progress: a task killed after SaveCursor
// restarts from that cursor, not from scratch.
func (c *Ctx) SaveCursor(cursor string) error {
	c.rec.Cursor = cursor
	c.rec.UpdatedNanos = c.s.clock().UnixNano()
	return c.s.cfg.Store.PutTask(c.rec)
}

// Throttle blocks until the scheduler's byte budget admits n more
// background bytes, honoring the context. A zero-rate scheduler admits
// immediately.
func (c *Ctx) Throttle(n int64) error {
	return c.s.throttle(c.Context, n)
}

// Func executes one task. A nil return marks the task Done; an error
// requeues it (up to Config.RetryLimit attempts) and then marks it
// Failed. Executors must honor ctx cancellation and be re-entrant from
// their record's Cursor.
type Func func(c *Ctx) error

// Config tunes a Scheduler.
type Config struct {
	// Store persists task state; required.
	Store Store
	// Clock abstracts time; nil uses the wall clock. Under internal/sim
	// this is the engine's virtual clock.
	Clock func() time.Time
	// Sleep abstracts throttle waits; nil uses a context-aware timer.
	// Under internal/sim this advances virtual time.
	Sleep func(time.Duration)
	// GlobalSlots caps concurrently running tasks (default 4).
	GlobalSlots int
	// SiteSlots caps concurrently running tasks per site (default 1).
	SiteSlots int
	// BytesPerSec is the shared background byte budget executors draw
	// from via Ctx.Throttle; 0 disables throttling.
	BytesPerSec int64
	// RetryLimit is the maximum executions per task before it is marked
	// Failed (default 3).
	RetryLimit int
	// Interval is the background loop cadence for Start (default 1s).
	Interval time.Duration
	// Metrics optionally exports task_* instrumentation.
	Metrics *obs.Registry
}

// schedMetrics is the scheduler's instrument set; nil-safe when disabled.
type schedMetrics struct {
	enqueued  *obs.CounterVec
	started   *obs.CounterVec
	completed *obs.CounterVec
	failed    *obs.CounterVec
	retries   *obs.CounterVec
	pending   *obs.Gauge
	running   *obs.Gauge
	throttled *obs.Counter
}

func newSchedMetrics(reg *obs.Registry) schedMetrics {
	if reg == nil {
		return schedMetrics{}
	}
	return schedMetrics{
		enqueued:  reg.CounterVec("task_enqueued_total", "type", "background tasks enqueued"),
		started:   reg.CounterVec("task_started_total", "type", "background task executions started"),
		completed: reg.CounterVec("task_completed_total", "type", "background tasks completed"),
		failed:    reg.CounterVec("task_failed_total", "type", "background tasks failed permanently (retries exhausted)"),
		retries:   reg.CounterVec("task_retries_total", "type", "background task executions requeued after an error"),
		pending:   reg.Gauge("task_pending", "background tasks waiting to run"),
		running:   reg.Gauge("task_running", "background tasks currently executing"),
		throttled: reg.Counter("task_throttled_bytes_total", "background bytes admitted through the task throttle"),
	}
}

// Scheduler runs background tasks from a shared durable queue.
type Scheduler struct {
	cfg   Config
	execs map[string]Func
	obs   schedMetrics

	thrMu     sync.Mutex
	thrTokens float64
	thrLast   time.Time

	mu      sync.Mutex
	sources []*source
	synced  bool
	started bool
	stop    chan struct{}
	done    chan struct{}
}

type source struct {
	name   string
	every  time.Duration
	fn     func(ctx context.Context)
	nextAt time.Time
}

// New builds a scheduler. Register executors and sources before the
// first RunOnce/Start.
func New(cfg Config) *Scheduler {
	if cfg.Store == nil {
		panic("tasks: Config.Store is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.GlobalSlots <= 0 {
		cfg.GlobalSlots = 4
	}
	if cfg.SiteSlots <= 0 {
		cfg.SiteSlots = 1
	}
	if cfg.RetryLimit <= 0 {
		cfg.RetryLimit = 3
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	s := &Scheduler{
		cfg:   cfg,
		execs: make(map[string]Func),
		obs:   newSchedMetrics(cfg.Metrics),
	}
	s.thrLast = cfg.Clock()
	return s
}

func (s *Scheduler) clock() time.Time { return s.cfg.Clock() }

// Register binds an executor to a task type. Not safe to call after
// Start; typical wiring registers everything up front.
func (s *Scheduler) Register(taskType string, fn Func) {
	s.execs[taskType] = fn
}

// AddSource installs a periodic task generator: fn runs at the top of a
// pass whenever at least `every` has elapsed since its previous run (and
// on the very first pass). Sources enqueue tasks; they do not execute
// work themselves.
func (s *Scheduler) AddSource(name string, every time.Duration, fn func(ctx context.Context)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sources = append(s.sources, &source{name: name, every: every, fn: fn})
}

// Enqueue adds a task to the durable queue. Records with an ID already
// pending or running are dropped (idempotent sources); IDs whose
// previous incarnation is Done or Failed are replaced by the fresh task.
// It returns whether the task was actually enqueued.
func (s *Scheduler) Enqueue(rec *model.TaskRecord) (bool, error) {
	if rec == nil || rec.ID == "" || rec.Type == "" {
		return false, fmt.Errorf("tasks: invalid record %+v", rec)
	}
	for _, t := range s.cfg.Store.ListTasks() {
		if t.ID == rec.ID && (t.State == model.TaskPending || t.State == model.TaskRunning) {
			return false, nil
		}
	}
	cp := rec.Clone()
	cp.State = model.TaskPending
	cp.Attempts = 0
	now := s.clock().UnixNano()
	if cp.CreatedNanos == 0 {
		cp.CreatedNanos = now
	}
	cp.UpdatedNanos = now
	if err := s.cfg.Store.PutTask(cp); err != nil {
		return false, err
	}
	s.obs.enqueued.With(cp.Type).Inc()
	return true, nil
}

// resync flips Running rows back to Pending once per scheduler lifetime:
// a Running row at startup means the previous process died mid-task.
func (s *Scheduler) resync() {
	s.mu.Lock()
	if s.synced {
		s.mu.Unlock()
		return
	}
	s.synced = true
	s.mu.Unlock()
	for _, t := range s.cfg.Store.ListTasks() {
		if t.State == model.TaskRunning {
			t.State = model.TaskPending
			t.UpdatedNanos = s.clock().UnixNano()
			_ = s.cfg.Store.PutTask(t)
		}
	}
}

// runSources fires every due source.
func (s *Scheduler) runSources(ctx context.Context) {
	now := s.clock()
	s.mu.Lock()
	due := make([]*source, 0, len(s.sources))
	for _, src := range s.sources {
		if !src.nextAt.After(now) {
			src.nextAt = now.Add(src.every)
			due = append(due, src)
		}
	}
	s.mu.Unlock()
	for _, src := range due {
		src.fn(ctx)
	}
}

// admissible returns the pending tasks eligible to start, in admission
// order, excluding IDs in skip (already executed this pass).
func (s *Scheduler) admissible(skip map[string]bool) []*model.TaskRecord {
	var pending []*model.TaskRecord
	for _, t := range s.cfg.Store.ListTasks() {
		if t.State != model.TaskPending || skip[t.ID] {
			continue
		}
		if _, ok := s.execs[t.Type]; !ok {
			continue
		}
		pending = append(pending, t)
	}
	sort.Slice(pending, func(i, j int) bool {
		a, b := pending[i], pending[j]
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		if a.CreatedNanos != b.CreatedNanos {
			return a.CreatedNanos < b.CreatedNanos
		}
		return a.ID < b.ID
	})
	return pending
}

// RunOnce executes one scheduler pass: resume-sync on the first call,
// then due sources, then batches of admissible tasks until the queue has
// nothing startable left. It blocks until every task it started has
// finished, so a caller driving passes manually (Cluster.Tick, the sim,
// tests) observes a quiescent queue between passes.
func (s *Scheduler) RunOnce(ctx context.Context) {
	s.resync()
	s.runSources(ctx)

	ran := make(map[string]bool)
	for {
		batch := s.pickBatch(s.admissible(ran))
		if len(batch) == 0 {
			break
		}
		var wg sync.WaitGroup
		for _, t := range batch {
			ran[t.ID] = true
			wg.Add(1)
			go func(t *model.TaskRecord) {
				defer wg.Done()
				s.execute(ctx, t)
			}(t)
		}
		wg.Wait()
		if ctx.Err() != nil {
			break
		}
	}
	s.updateGauges()
}

// pickBatch applies the global and per-site concurrency caps to an
// admission-ordered pending list.
func (s *Scheduler) pickBatch(pending []*model.TaskRecord) []*model.TaskRecord {
	var batch []*model.TaskRecord
	perSite := make(map[model.SiteID]int)
	for _, t := range pending {
		if len(batch) >= s.cfg.GlobalSlots {
			break
		}
		if t.Site != model.NoSite && perSite[t.Site] >= s.cfg.SiteSlots {
			continue
		}
		if t.Site != model.NoSite {
			perSite[t.Site]++
		}
		batch = append(batch, t)
	}
	return batch
}

// execute runs one task through its registered executor and persists the
// resulting state transition.
func (s *Scheduler) execute(ctx context.Context, t *model.TaskRecord) {
	fn := s.execs[t.Type]
	t.State = model.TaskRunning
	t.Attempts++
	t.UpdatedNanos = s.clock().UnixNano()
	if err := s.cfg.Store.PutTask(t); err != nil {
		return
	}
	s.obs.started.With(t.Type).Inc()

	err := fn(&Ctx{Context: ctx, s: s, rec: t})
	t.UpdatedNanos = s.clock().UnixNano()
	switch {
	case err == nil:
		t.State = model.TaskDone
		t.LastError = ""
		s.obs.completed.With(t.Type).Inc()
	case t.Attempts >= s.cfg.RetryLimit:
		t.State = model.TaskFailed
		t.LastError = err.Error()
		s.obs.failed.With(t.Type).Inc()
	default:
		t.State = model.TaskPending
		t.LastError = err.Error()
		s.obs.retries.With(t.Type).Inc()
	}
	_ = s.cfg.Store.PutTask(t)
}

func (s *Scheduler) updateGauges() {
	if s.obs.pending == nil {
		return
	}
	var pending, running int64
	for _, t := range s.cfg.Store.ListTasks() {
		switch t.State {
		case model.TaskPending:
			pending++
		case model.TaskRunning:
			running++
		}
	}
	s.obs.pending.Set(pending)
	s.obs.running.Set(running)
}

// throttle blocks until the shared token bucket admits n bytes. Tokens
// accrue at BytesPerSec with one second of burst; the wait honors ctx.
func (s *Scheduler) throttle(ctx context.Context, n int64) error {
	rate := float64(s.cfg.BytesPerSec)
	if rate <= 0 || n <= 0 {
		return ctx.Err()
	}
	for {
		s.thrMu.Lock()
		now := s.clock()
		s.thrTokens += now.Sub(s.thrLast).Seconds() * rate
		if s.thrTokens > rate {
			s.thrTokens = rate // burst cap: one second of budget
		}
		s.thrLast = now
		if s.thrTokens >= float64(n) {
			s.thrTokens -= float64(n)
			s.thrMu.Unlock()
			s.obs.throttled.Add(n)
			return ctx.Err()
		}
		wait := time.Duration((float64(n) - s.thrTokens) / rate * float64(time.Second))
		s.thrMu.Unlock()
		if err := s.sleep(ctx, wait); err != nil {
			return err
		}
	}
}

// Throttle draws n bytes from the shared background byte budget outside
// a task context — components like the repair service use it so their
// I/O counts against the same bucket as task executors.
func (s *Scheduler) Throttle(ctx context.Context, n int64) error {
	return s.throttle(ctx, n)
}

// sleep waits for d via the injected Sleep hook or a context-aware timer.
func (s *Scheduler) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if s.cfg.Sleep != nil {
		s.cfg.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Start launches the background loop: one RunOnce per Interval. Safe to
// call once; Stop ends it.
//
//lint:ignore ctxfirst the loop's lifetime is detached by design: it has no caller context and is cancelled via Stop
func (s *Scheduler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()

	go func() {
		defer close(done)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-stop
			cancel()
		}()
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			s.RunOnce(ctx)
			select {
			case <-stop:
				return
			case <-t.C:
			}
		}
	}()
}

// Stop halts the background loop and waits for in-flight tasks to stop.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	stop, done := s.stop, s.done
	s.mu.Unlock()
	close(stop)
	<-done
}
