package tasks

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecstore/internal/metadata"
	"ecstore/internal/model"
)

// vclock is a virtual clock whose Sleep advances time instantly, so
// throttled schedulers run deterministically at full speed.
type vclock struct {
	mu  sync.Mutex
	now time.Time
}

func newVclock() *vclock { return &vclock{now: time.Unix(1000, 0)} }

func (v *vclock) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

func (v *vclock) Sleep(d time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = v.now.Add(d)
}

func newSched(t *testing.T, mut func(*Config)) (*Scheduler, *metadata.Catalog, *vclock) {
	t.Helper()
	cat := metadata.NewCatalog([]model.SiteID{1, 2, 3, 4})
	clk := newVclock()
	cfg := Config{Store: cat, Clock: clk.Now, Sleep: clk.Sleep}
	if mut != nil {
		mut(&cfg)
	}
	return New(cfg), cat, clk
}

func rec(id, typ string, site model.SiteID, prio int) *model.TaskRecord {
	return &model.TaskRecord{ID: id, Type: typ, Site: site, Priority: prio}
}

func TestEnqueueDedupe(t *testing.T) {
	s, cat, _ := newSched(t, nil)
	s.Register("noop", func(*Ctx) error { return nil })

	if ok, err := s.Enqueue(rec("a", "noop", 1, 10)); err != nil || !ok {
		t.Fatalf("first enqueue = %v, %v", ok, err)
	}
	// Same ID while pending: dropped.
	if ok, err := s.Enqueue(rec("a", "noop", 1, 10)); err != nil || ok {
		t.Fatalf("duplicate enqueue = %v, %v", ok, err)
	}
	s.RunOnce(context.Background())
	if got := cat.ListTasks(); len(got) != 1 || got[0].State != model.TaskDone {
		t.Fatalf("after run = %+v", got)
	}
	// Same ID after Done: replaced and runs again.
	if ok, err := s.Enqueue(rec("a", "noop", 1, 10)); err != nil || !ok {
		t.Fatalf("re-enqueue after done = %v, %v", ok, err)
	}
	if got := cat.ListTasks(); got[0].State != model.TaskPending {
		t.Fatalf("re-enqueued state = %v", got[0].State)
	}
	if _, err := s.Enqueue(&model.TaskRecord{}); err == nil {
		t.Fatal("empty record should be rejected")
	}
}

func TestPriorityAndFIFOOrder(t *testing.T) {
	s, _, _ := newSched(t, func(c *Config) { c.GlobalSlots = 1 })
	var order []string
	var mu sync.Mutex
	s.Register("t", func(c *Ctx) error {
		mu.Lock()
		order = append(order, c.Record().ID)
		mu.Unlock()
		return nil
	})
	// Enqueued low-priority first; high priority must still run first.
	if _, err := s.Enqueue(rec("low-1", "t", model.NoSite, model.PriorityMove)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Enqueue(rec("low-0", "t", model.NoSite, model.PriorityMove)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Enqueue(rec("high", "t", model.NoSite, model.PriorityRepair)); err != nil {
		t.Fatal(err)
	}
	s.RunOnce(context.Background())
	// low-1 and low-0 share priority and (virtual) creation time: ID breaks
	// the tie.
	want := []string{"high", "low-0", "low-1"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestPerSiteCap(t *testing.T) {
	s, _, _ := newSched(t, func(c *Config) { c.GlobalSlots = 8; c.SiteSlots = 1 })
	var running, maxSite1 atomic.Int32
	s.Register("t", func(c *Ctx) error {
		if c.Record().Site == 1 {
			n := running.Add(1)
			if n > maxSite1.Load() {
				maxSite1.Store(n)
			}
			defer running.Add(-1)
		}
		return nil
	})
	for i := 0; i < 4; i++ {
		if _, err := s.Enqueue(rec(fmt.Sprintf("s1-%d", i), "t", 1, 10)); err != nil {
			t.Fatal(err)
		}
	}
	s.RunOnce(context.Background())
	if got := maxSite1.Load(); got > 1 {
		t.Fatalf("site 1 concurrency = %d, want <= 1", got)
	}
}

func TestRetryThenFail(t *testing.T) {
	s, cat, _ := newSched(t, func(c *Config) { c.RetryLimit = 3 })
	var runs atomic.Int32
	boom := errors.New("boom")
	s.Register("t", func(*Ctx) error { runs.Add(1); return boom })
	if _, err := s.Enqueue(rec("x", "t", 1, 10)); err != nil {
		t.Fatal(err)
	}

	// Pass 1: one attempt, requeued.
	s.RunOnce(context.Background())
	if got := cat.ListTasks()[0]; got.State != model.TaskPending || got.Attempts != 1 || got.LastError != "boom" {
		t.Fatalf("after pass 1 = %+v", got)
	}
	// Passes 2 and 3 exhaust the retry budget.
	s.RunOnce(context.Background())
	s.RunOnce(context.Background())
	got := cat.ListTasks()[0]
	if got.State != model.TaskFailed || got.Attempts != 3 {
		t.Fatalf("after exhaustion = %+v", got)
	}
	if runs.Load() != 3 {
		t.Fatalf("runs = %d, want 3", runs.Load())
	}
	// Further passes must not run a Failed task.
	s.RunOnce(context.Background())
	if runs.Load() != 3 {
		t.Fatalf("failed task ran again: %d", runs.Load())
	}
}

func TestResumeRerunsRunningNotDone(t *testing.T) {
	cat := metadata.NewCatalog([]model.SiteID{1})
	clk := newVclock()
	// Simulate a crashed scheduler: one task died mid-run, one finished.
	if err := cat.PutTask(&model.TaskRecord{ID: "died", Type: "t", Site: 1, State: model.TaskRunning, Attempts: 1, Cursor: "half-way"}); err != nil {
		t.Fatal(err)
	}
	if err := cat.PutTask(&model.TaskRecord{ID: "finished", Type: "t", Site: 1, State: model.TaskDone}); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Store: cat, Clock: clk.Now, Sleep: clk.Sleep})
	var mu sync.Mutex
	ran := map[string]string{}
	s.Register("t", func(c *Ctx) error {
		mu.Lock()
		ran[c.Record().ID] = c.Record().Cursor
		mu.Unlock()
		return nil
	})
	s.RunOnce(context.Background())

	if len(ran) != 1 {
		t.Fatalf("ran = %v, want only the interrupted task", ran)
	}
	// The interrupted task resumed from its saved cursor.
	if cur, ok := ran["died"]; !ok || cur != "half-way" {
		t.Fatalf("resumed with cursor %q (ok=%v), want half-way", cur, ok)
	}
}

func TestSaveCursorPersists(t *testing.T) {
	s, cat, _ := newSched(t, nil)
	stop := errors.New("interrupted")
	s.Register("t", func(c *Ctx) error {
		if err := c.SaveCursor("chunk-17"); err != nil {
			t.Error(err)
		}
		return stop
	})
	if _, err := s.Enqueue(rec("x", "t", 1, 10)); err != nil {
		t.Fatal(err)
	}
	s.RunOnce(context.Background())
	if got := cat.ListTasks()[0]; got.Cursor != "chunk-17" || got.State != model.TaskPending {
		t.Fatalf("after interrupted run = %+v", got)
	}
}

func TestThrottleSpreadsBytes(t *testing.T) {
	s, _, clk := newSched(t, func(c *Config) { c.BytesPerSec = 1000 })
	s.Register("t", func(c *Ctx) error {
		for i := 0; i < 5; i++ {
			if err := c.Throttle(1000); err != nil {
				return err
			}
		}
		return nil
	})
	if _, err := s.Enqueue(rec("x", "t", 1, 10)); err != nil {
		t.Fatal(err)
	}
	start := clk.Now()
	s.RunOnce(context.Background())
	// 5000 bytes at 1000 B/s with a 1000-byte burst: at least 4 virtual
	// seconds must have elapsed through Sleep.
	if elapsed := clk.Now().Sub(start); elapsed < 4*time.Second {
		t.Fatalf("throttled 5000 bytes in %v of virtual time, want >= 4s", elapsed)
	}
}

func TestThrottleHonorsContext(t *testing.T) {
	cat := metadata.NewCatalog([]model.SiteID{1})
	clk := newVclock()
	// No Sleep hook: the real timer path must honor cancellation.
	s := New(Config{Store: cat, Clock: clk.Now, BytesPerSec: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.throttle(ctx, 1<<30); !errors.Is(err, context.Canceled) {
		t.Fatalf("throttle on canceled ctx = %v", err)
	}
}

func TestSourcesRunAtCadence(t *testing.T) {
	s, _, clk := newSched(t, nil)
	var fires atomic.Int32
	s.AddSource("sweep", 10*time.Second, func(context.Context) { fires.Add(1) })

	s.RunOnce(context.Background()) // first pass always fires
	s.RunOnce(context.Background()) // same instant: not due
	if got := fires.Load(); got != 1 {
		t.Fatalf("fires = %d, want 1", got)
	}
	clk.Sleep(11 * time.Second)
	s.RunOnce(context.Background())
	if got := fires.Load(); got != 2 {
		t.Fatalf("fires after advance = %d, want 2", got)
	}
}

func TestSourceEnqueuedTasksRunSamePass(t *testing.T) {
	s, cat, _ := newSched(t, nil)
	var ran atomic.Int32
	s.Register("t", func(*Ctx) error { ran.Add(1); return nil })
	s.AddSource("gen", time.Minute, func(context.Context) {
		if _, err := s.Enqueue(rec("from-source", "t", 1, 10)); err != nil {
			t.Error(err)
		}
	})
	s.RunOnce(context.Background())
	if ran.Load() != 1 {
		t.Fatalf("source task ran %d times, want 1", ran.Load())
	}
	if got := cat.ListTasks(); len(got) != 1 || got[0].State != model.TaskDone {
		t.Fatalf("tasks = %+v", got)
	}
}

func TestStartStop(t *testing.T) {
	cat := metadata.NewCatalog([]model.SiteID{1})
	s := New(Config{Store: cat, Interval: time.Millisecond})
	var ran atomic.Int32
	s.Register("t", func(*Ctx) error { ran.Add(1); return nil })
	if _, err := s.Enqueue(rec("x", "t", 1, 10)); err != nil {
		t.Fatal(err)
	}
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for ran.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	if ran.Load() == 0 {
		t.Fatal("background loop never ran the task")
	}
}

func TestUnregisteredTypeStaysPending(t *testing.T) {
	s, cat, _ := newSched(t, nil)
	if _, err := s.Enqueue(rec("x", "mystery", 1, 10)); err != nil {
		t.Fatal(err)
	}
	s.RunOnce(context.Background())
	if got := cat.ListTasks()[0]; got.State != model.TaskPending || got.Attempts != 0 {
		t.Fatalf("unregistered task = %+v", got)
	}
}
