package workload

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"ecstore/internal/model"
)

// Trace replays a recorded request log: each request is a fixed list of
// block ids, replayed in order (wrapping at the end). Use it to drive the
// simulator or a real cluster with a captured production workload instead
// of the synthetic generators.
type Trace struct {
	requests [][]model.BlockID
	next     int
}

var _ Workload = (*Trace)(nil)

// ParseTrace reads a trace in the text format
//
//	# comment
//	blockA blockB blockC        <- one request per line, ids whitespace-split
//
// Empty lines and lines starting with '#' are skipped.
func ParseTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		req := make([]model.BlockID, 0, len(fields))
		for _, f := range fields {
			req = append(req, model.BlockID(f))
		}
		t.requests = append(t.requests, req)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("read trace line %d: %w", lineNo, err)
	}
	if len(t.requests) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return t, nil
}

// NumRequests returns the trace length.
func (t *Trace) NumRequests() int { return len(t.requests) }

// Blocks returns the distinct block ids referenced by the trace, in first-
// appearance order — the population a cluster must be loaded with before
// replay.
func (t *Trace) Blocks() []model.BlockID {
	seen := make(map[model.BlockID]bool)
	var out []model.BlockID
	for _, req := range t.requests {
		for _, id := range req {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// NextRequest replays the trace in order, wrapping around. The rng is
// unused (replay is deterministic by construction).
func (t *Trace) NextRequest(_ *rand.Rand) []model.BlockID {
	req := t.requests[t.next]
	t.next = (t.next + 1) % len(t.requests)
	out := make([]model.BlockID, len(req))
	copy(out, req)
	return out
}

// WriteTrace serializes requests in ParseTrace's format, so synthetic
// workloads can be captured and replayed.
func WriteTrace(w io.Writer, requests [][]model.BlockID) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# ecstore trace: %s requests\n", strconv.Itoa(len(requests))); err != nil {
		return err
	}
	for _, req := range requests {
		for i, id := range req {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(string(id)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
