// Package workload generates the two benchmark workloads of the paper's
// evaluation (Section VI-B): the YCSB-E scan workload and a synthetic
// reconstruction of the Wikipedia image-access trace, plus the Zipf and
// power-law samplers they are built from.
package workload

import (
	"math"
	"math/rand"

	"ecstore/internal/model"
)

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^exponent. Unlike math/rand's Zipf it supports exponent 1.0,
// the paper's default skew, via an explicit cumulative table and binary
// search.
type Zipf struct {
	cum []float64 // cumulative unnormalized weights
}

// NewZipf builds a sampler over n ranks. n must be positive; exponent may
// be any non-negative value (0 degenerates to uniform).
func NewZipf(n int, exponent float64) *Zipf {
	if n <= 0 {
		n = 1
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), exponent)
		cum[i] = total
	}
	return &Zipf{cum: cum}
}

// Sample draws one rank.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the rank-space size.
func (z *Zipf) N() int { return len(z.cum) }

// Pareto samples a bounded Pareto value with the given median and shape
// alpha, clamped to [min, max]. Both the paper's Wikipedia image sizes and
// images-per-page follow power laws (Section VI-B).
func Pareto(rng *rand.Rand, median, alpha, min, max float64) float64 {
	// For Pareto(xm, alpha): median = xm * 2^(1/alpha).
	xm := median / math.Pow(2, 1/alpha)
	u := rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	v := xm / math.Pow(1-u, 1/alpha)
	if v < min {
		v = min
	}
	if v > max {
		v = max
	}
	return v
}

// Workload is re-exported here for documentation symmetry; the simulator
// consumes anything with this shape.
type Workload interface {
	NextRequest(rng *rand.Rand) []model.BlockID
}

// PhaseAware workloads are notified when the measurement phase starts
// (the paper's YCSB methodology switches from a uniform warm-up to a
// power-law measured phase to effect workload change).
type PhaseAware interface {
	OnMeasureStart()
}

// YCSBE is the YCSB workload E scan generator: each request reads a
// contiguous range of keys starting at a sampled key. Warm-up samples
// start keys uniformly; the measured phase uses a scrambled-Zipfian
// distribution, as in YCSB itself: popularity ranks are mapped through a
// fixed permutation so the hottest scan ranges scatter across the
// keyspace instead of clustering at key zero.
type YCSBE struct {
	numBlocks int
	maxScan   int
	zipf      *Zipf
	scramble  []int
	skewed    bool
}

var (
	_ Workload   = (*YCSBE)(nil)
	_ PhaseAware = (*YCSBE)(nil)
)

// NewYCSBE builds the generator over numBlocks keys with scan lengths
// uniform in [1, maxScan] (maxScan <= 0 defaults to 20, giving the ~10
// blocks-per-request the paper cites) and the given Zipf exponent for the
// measured phase (the paper's default is 1).
func NewYCSBE(numBlocks, maxScan int, exponent float64) *YCSBE {
	return NewYCSBESeeded(numBlocks, maxScan, exponent, 7)
}

// NewYCSBESeeded is NewYCSBE with an explicit scramble seed.
func NewYCSBESeeded(numBlocks, maxScan int, exponent float64, seed int64) *YCSBE {
	if maxScan <= 0 {
		maxScan = 20
	}
	scramble := rand.New(rand.NewSource(seed)).Perm(numBlocks)
	return &YCSBE{
		numBlocks: numBlocks,
		maxScan:   maxScan,
		zipf:      NewZipf(numBlocks, exponent),
		scramble:  scramble,
	}
}

// OnMeasureStart switches from uniform to skewed key popularity.
func (y *YCSBE) OnMeasureStart() { y.skewed = true }

// Skewed reports whether the generator is in the measured (skewed) phase.
func (y *YCSBE) Skewed() bool { return y.skewed }

// NextRequest returns one scan: blocks [start, start+len) mod numBlocks.
func (y *YCSBE) NextRequest(rng *rand.Rand) []model.BlockID {
	var start int
	if y.skewed {
		start = y.scramble[y.zipf.Sample(rng)]
	} else {
		start = rng.Intn(y.numBlocks)
	}
	length := 1 + rng.Intn(y.maxScan)
	ids := make([]model.BlockID, 0, length)
	for i := 0; i < length; i++ {
		ids = append(ids, model.BlockName((start+i)%y.numBlocks))
	}
	return ids
}

// Wikipedia is the synthetic reconstruction of the Wikipedia image-access
// trace [47]: pages are sampled with Zipf popularity, a request fetches
// every image on the page, images-per-page follows a power law with median
// ~10, and image sizes follow a power law with median ~500 KB.
type Wikipedia struct {
	pages [][]model.BlockID
	sizes []int64
	zipf  *Zipf
}

var _ Workload = (*Wikipedia)(nil)

// WikipediaConfig tunes the synthetic trace.
type WikipediaConfig struct {
	// NumPages is the page population; zero means 2000.
	NumPages int
	// PageZipfExponent is the page popularity skew; zero means 1.0
	// (the trace follows a Zipf distribution).
	PageZipfExponent float64
	// MedianImagesPerPage; zero means 10 (the trace's median page).
	MedianImagesPerPage float64
	// MedianImageBytes; zero means 500 KB (the trace's median image).
	MedianImageBytes float64
	// MaxImageBytes caps image size; zero means 4 MB.
	MaxImageBytes float64
	// Seed drives the deterministic trace construction.
	Seed int64
}

func (c WikipediaConfig) withDefaults() WikipediaConfig {
	if c.NumPages == 0 {
		c.NumPages = 2000
	}
	if c.PageZipfExponent == 0 {
		c.PageZipfExponent = 1.0
	}
	if c.MedianImagesPerPage == 0 {
		c.MedianImagesPerPage = 10
	}
	if c.MedianImageBytes == 0 {
		c.MedianImageBytes = 500 * 1024
	}
	if c.MaxImageBytes == 0 {
		c.MaxImageBytes = 4 * 1024 * 1024
	}
	return c
}

// NewWikipedia constructs the trace: page image counts, image block ids
// and image sizes are all fixed at construction so every run over the same
// seed replays the same trace.
func NewWikipedia(cfg WikipediaConfig) *Wikipedia {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Wikipedia{
		pages: make([][]model.BlockID, cfg.NumPages),
		zipf:  NewZipf(cfg.NumPages, cfg.PageZipfExponent),
	}
	next := 0
	for p := 0; p < cfg.NumPages; p++ {
		count := int(math.Round(Pareto(rng, cfg.MedianImagesPerPage, 1.5, 1, 50)))
		page := make([]model.BlockID, count)
		for i := range page {
			page[i] = model.BlockName(next)
			size := int64(Pareto(rng, cfg.MedianImageBytes, 1.8, 1024, cfg.MaxImageBytes))
			w.sizes = append(w.sizes, size)
			next++
		}
		w.pages[p] = page
	}
	return w
}

// NumBlocks returns the number of distinct images in the trace.
func (w *Wikipedia) NumBlocks() int { return len(w.sizes) }

// SizeFor returns image i's size in bytes (the simulator's populate hook).
func (w *Wikipedia) SizeFor(i int) int64 { return w.sizes[i] }

// NextRequest samples a page and returns all of its images.
func (w *Wikipedia) NextRequest(rng *rand.Rand) []model.BlockID {
	page := w.pages[w.zipf.Sample(rng)]
	out := make([]model.BlockID, len(page))
	copy(out, page)
	return out
}

// Fixed is a constant-size uniform workload used by microbenchmarks: each
// request reads `perRequest` distinct uniformly random blocks.
type Fixed struct {
	numBlocks  int
	perRequest int
}

var _ Workload = (*Fixed)(nil)

// NewFixed builds a uniform workload.
func NewFixed(numBlocks, perRequest int) *Fixed {
	if perRequest <= 0 {
		perRequest = 1
	}
	return &Fixed{numBlocks: numBlocks, perRequest: perRequest}
}

// NextRequest implements Workload.
func (f *Fixed) NextRequest(rng *rand.Rand) []model.BlockID {
	seen := make(map[int]bool, f.perRequest)
	ids := make([]model.BlockID, 0, f.perRequest)
	for len(ids) < f.perRequest && len(ids) < f.numBlocks {
		i := rng.Intn(f.numBlocks)
		if seen[i] {
			continue
		}
		seen[i] = true
		ids = append(ids, model.BlockName(i))
	}
	return ids
}
