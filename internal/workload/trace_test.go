package workload

import (
	"bytes"
	"strings"
	"testing"

	"ecstore/internal/model"
)

func TestParseTrace(t *testing.T) {
	input := `# a comment
b1 b2 b3

b2 b4
# another comment
b1
`
	tr, err := ParseTrace(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRequests() != 3 {
		t.Fatalf("requests = %d", tr.NumRequests())
	}
	blocks := tr.Blocks()
	want := []model.BlockID{"b1", "b2", "b3", "b4"}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %v", blocks)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("blocks = %v, want %v", blocks, want)
		}
	}
}

func TestParseTraceEmpty(t *testing.T) {
	if _, err := ParseTrace(strings.NewReader("# only comments\n\n")); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestTraceReplayWrapsAndCopies(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader("a b\nc\n"))
	if err != nil {
		t.Fatal(err)
	}
	first := tr.NextRequest(nil)
	if len(first) != 2 || first[0] != "a" {
		t.Fatalf("first = %v", first)
	}
	second := tr.NextRequest(nil)
	if len(second) != 1 || second[0] != "c" {
		t.Fatalf("second = %v", second)
	}
	third := tr.NextRequest(nil) // wraps
	if len(third) != 2 || third[1] != "b" {
		t.Fatalf("wrap = %v", third)
	}
	// Mutating the returned slice must not corrupt the trace.
	third[0] = "mutated"
	tr.next = 0
	again := tr.NextRequest(nil)
	if again[0] != "a" {
		t.Fatal("NextRequest aliases internal storage")
	}
}

func TestWriteTraceRoundTrip(t *testing.T) {
	reqs := [][]model.BlockID{
		{"x", "y"},
		{"z"},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRequests() != 2 {
		t.Fatalf("round trip requests = %d", tr.NumRequests())
	}
	got := tr.NextRequest(nil)
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("round trip request = %v", got)
	}
}
