package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ecstore/internal/model"
)

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.0)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	// Rank 0 should draw close to 1/H(1000) ≈ 13.4% of samples.
	p0 := float64(counts[0]) / n
	if p0 < 0.10 || p0 > 0.17 {
		t.Fatalf("rank-0 probability = %.3f, want ~0.134", p0)
	}
	// Monotone-ish decay: rank 0 >> rank 100.
	if counts[0] <= counts[100] {
		t.Fatalf("no skew: counts[0]=%d counts[100]=%d", counts[0], counts[100])
	}
}

func TestZipfUniformWhenExponentZero(t *testing.T) {
	z := NewZipf(10, 0)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[z.Sample(rng)]++
	}
	for r, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("rank %d count %d not uniform", r, c)
		}
	}
}

func TestZipfDegenerate(t *testing.T) {
	z := NewZipf(0, 1)
	if z.N() != 1 {
		t.Fatalf("N = %d, want 1", z.N())
	}
	if got := z.Sample(rand.New(rand.NewSource(1))); got != 0 {
		t.Fatalf("Sample = %d", got)
	}
}

func TestParetoMedianAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var vals []float64
	for i := 0; i < 20000; i++ {
		vals = append(vals, Pareto(rng, 500, 1.8, 10, 5000))
	}
	sort.Float64s(vals)
	median := vals[len(vals)/2]
	if math.Abs(median-500)/500 > 0.1 {
		t.Fatalf("median = %.1f, want ~500", median)
	}
	if vals[0] < 10 || vals[len(vals)-1] > 5000 {
		t.Fatalf("bounds violated: [%.1f, %.1f]", vals[0], vals[len(vals)-1])
	}
}

func TestYCSBEPhases(t *testing.T) {
	y := NewYCSBE(1000, 10, 1.0)
	rng := rand.New(rand.NewSource(4))

	if y.Skewed() {
		t.Fatal("generator born skewed")
	}
	// Warm-up: uniform start keys.
	seen := map[model.BlockID]int{}
	for i := 0; i < 5000; i++ {
		for _, id := range y.NextRequest(rng) {
			seen[id]++
		}
	}
	if len(seen) < 900 {
		t.Fatalf("uniform warm-up touched only %d distinct blocks", len(seen))
	}

	y.OnMeasureStart()
	if !y.Skewed() {
		t.Fatal("OnMeasureStart did not switch phase")
	}
	skewCounts := map[model.BlockID]int{}
	for i := 0; i < 5000; i++ {
		for _, id := range y.NextRequest(rng) {
			skewCounts[id]++
		}
	}
	// Skewed phase concentrates: the busiest block must take far more
	// than the uniform share.
	max := 0
	total := 0
	for _, c := range skewCounts {
		total += c
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(total) < 5.0/1000 {
		t.Fatalf("skewed phase not skewed: max share %.4f", float64(max)/float64(total))
	}
}

func TestYCSBEScanProperties(t *testing.T) {
	y := NewYCSBE(100, 10, 1.0)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		ids := y.NextRequest(rng)
		if len(ids) < 1 || len(ids) > 10 {
			t.Fatalf("scan length %d out of [1, 10]", len(ids))
		}
		// Distinct ids (scan may wrap but numBlocks > maxScan).
		seen := map[model.BlockID]bool{}
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("duplicate id in scan: %v", ids)
			}
			seen[id] = true
		}
	}
}

func TestYCSBEScrambleScattersHotRange(t *testing.T) {
	y := NewYCSBE(10000, 1, 1.0) // scans of length 1: pure key popularity
	y.OnMeasureStart()
	rng := rand.New(rand.NewSource(6))
	counts := map[model.BlockID]int{}
	for i := 0; i < 20000; i++ {
		counts[y.NextRequest(rng)[0]]++
	}
	// Find the two hottest keys; scrambling means they are unlikely to
	// be adjacent (indices 0 and 1 pre-scramble).
	type kv struct {
		id model.BlockID
		n  int
	}
	var all []kv
	for id, n := range counts {
		all = append(all, kv{id, n})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	if all[0].id == model.BlockName(0) && all[1].id == model.BlockName(1) {
		t.Fatal("hot keys not scrambled")
	}
}

func TestWikipediaDeterministicTrace(t *testing.T) {
	a := NewWikipedia(WikipediaConfig{NumPages: 100, Seed: 9})
	b := NewWikipedia(WikipediaConfig{NumPages: 100, Seed: 9})
	if a.NumBlocks() != b.NumBlocks() {
		t.Fatalf("trace not deterministic: %d vs %d blocks", a.NumBlocks(), b.NumBlocks())
	}
	for i := 0; i < a.NumBlocks(); i++ {
		if a.SizeFor(i) != b.SizeFor(i) {
			t.Fatalf("size %d differs across same-seed traces", i)
		}
	}
	rngA := rand.New(rand.NewSource(1))
	rngB := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		ra := a.NextRequest(rngA)
		rb := b.NextRequest(rngB)
		if len(ra) != len(rb) {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestWikipediaShape(t *testing.T) {
	w := NewWikipedia(WikipediaConfig{NumPages: 500, Seed: 11})
	// Image sizes: median ~500 KB.
	sizes := make([]float64, w.NumBlocks())
	for i := range sizes {
		sizes[i] = float64(w.SizeFor(i))
	}
	sort.Float64s(sizes)
	median := sizes[len(sizes)/2]
	if median < 300*1024 || median > 800*1024 {
		t.Fatalf("image size median = %.0f, want ~512000", median)
	}

	// Page sizes: median ~10 images, max capped at 50.
	rng := rand.New(rand.NewSource(12))
	var lens []int
	for i := 0; i < 2000; i++ {
		req := w.NextRequest(rng)
		lens = append(lens, len(req))
		if len(req) < 1 || len(req) > 50 {
			t.Fatalf("page has %d images", len(req))
		}
	}
	sort.Ints(lens)
	// Requests are popularity-weighted so the request-median differs
	// from the page-median; just require a plausible range.
	if lens[len(lens)/2] < 3 || lens[len(lens)/2] > 40 {
		t.Fatalf("request median images = %d", lens[len(lens)/2])
	}
}

func TestWikipediaRequestCopies(t *testing.T) {
	w := NewWikipedia(WikipediaConfig{NumPages: 10, Seed: 1})
	rng := rand.New(rand.NewSource(1))
	req := w.NextRequest(rng)
	req[0] = "mutated"
	req2 := w.NextRequest(rand.New(rand.NewSource(1)))
	if req2[0] == "mutated" {
		t.Fatal("NextRequest aliases internal page slice")
	}
}

func TestFixedWorkload(t *testing.T) {
	f := NewFixed(100, 5)
	rng := rand.New(rand.NewSource(1))
	ids := f.NextRequest(rng)
	if len(ids) != 5 {
		t.Fatalf("got %d ids", len(ids))
	}
	seen := map[model.BlockID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate block in Fixed request")
		}
		seen[id] = true
	}
	// perRequest > numBlocks degrades gracefully.
	small := NewFixed(3, 10)
	if got := len(small.NextRequest(rng)); got != 3 {
		t.Fatalf("small population request = %d ids", got)
	}
	// perRequest <= 0 defaults to 1.
	one := NewFixed(10, 0)
	if got := len(one.NextRequest(rng)); got != 1 {
		t.Fatalf("default perRequest = %d", got)
	}
}
