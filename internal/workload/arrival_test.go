package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestConstantArrival(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Constant{Rate: 200}
	for i := 0; i < 10; i++ {
		if got := c.Next(rng); got != 0.005 {
			t.Fatalf("Constant{200}.Next() = %v, want 0.005", got)
		}
	}
	if (Constant{}).Next(rng) != 0 {
		t.Fatal("zero-rate Constant should return 0")
	}
}

func TestPoissonArrivalMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Poisson{Rate: 500}
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		g := p.Next(rng)
		if g < 0 {
			t.Fatalf("negative interarrival gap %v", g)
		}
		sum += g
	}
	mean := sum / n
	if math.Abs(mean-1.0/500) > 0.0002 {
		t.Fatalf("Poisson{500} mean gap = %v, want ~0.002", mean)
	}
}

func TestPoissonArrivalDeterministic(t *testing.T) {
	a := Poisson{Rate: 100}
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		if a.Next(r1) != a.Next(r2) {
			t.Fatal("same seed must give the same arrival sequence")
		}
	}
}
