package workload

import "math/rand"

// Arrival is an open-loop arrival schedule: Next returns the time until
// the next request arrives, in seconds. Unlike the closed-loop harness
// (N clients that each wait for a response before issuing again), an
// open-loop generator keeps issuing at the offered rate regardless of
// how the system is doing — which is what exposes queueing collapse and
// makes "max throughput under a p99 SLO" a measurable quantity.
type Arrival interface {
	Next(rng *rand.Rand) float64
}

// Poisson models memoryless arrivals at Rate requests/second:
// exponentially distributed interarrival times with mean 1/Rate. This is
// the standard open-loop model for independent clients.
type Poisson struct {
	Rate float64 // requests per second; must be > 0
}

// Next draws an exponential interarrival gap.
func (p Poisson) Next(rng *rand.Rand) float64 {
	if p.Rate <= 0 {
		return 0
	}
	return rng.ExpFloat64() / p.Rate
}

// Constant issues requests at fixed 1/Rate intervals — a deterministic
// arrival schedule useful for pinning sim goldens and for worst-case
// (perfectly bursty-free) comparisons against Poisson.
type Constant struct {
	Rate float64 // requests per second; must be > 0
}

// Next returns the fixed interarrival gap.
func (c Constant) Next(rng *rand.Rand) float64 {
	if c.Rate <= 0 {
		return 0
	}
	return 1 / c.Rate
}
