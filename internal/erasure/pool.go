package erasure

import (
	"math/bits"
	"sync"
)

// Chunk-buffer pooling for the encode/decode hot path. Buffers live in
// power-of-two size classes; a request takes the smallest class that
// fits (fit-or-alloc: an empty class allocates and counts a pool miss).
// The pool stores *[]byte boxes and callers keep the box until release,
// so the steady state recycles both the backing array and its box and
// an encode/decode cycle performs zero per-call chunk allocations.
//
// Ownership rule: a buffer obtained from getBuf is exclusively owned
// until putBuf; after putBuf any slice into it may be overwritten by an
// unrelated caller. Stripe.Release is the only putBuf caller on the
// codec path, and core hands chunk data to sites and the cache strictly
// before releasing (both copy on ingest, so nothing aliases a pooled
// buffer after release).

const (
	// minPoolClass..maxPoolClass bound the pooled size classes: 512 B
	// (below which allocation is cheaper than pooling) to 64 MiB (the
	// wire layer's MaxFrameSize; larger blocks alloc directly).
	minPoolClass = 9
	maxPoolClass = 26
)

var bufPools [maxPoolClass + 1]sync.Pool

// poolClass returns the smallest class whose buffers hold n bytes.
func poolClass(n int) int {
	cls := bits.Len(uint(n - 1))
	if cls < minPoolClass {
		cls = minPoolClass
	}
	return cls
}

// getBuf returns a length-n buffer with at least class capacity. The
// contents are stale pool data; callers overwrite or clear every byte
// they expose. m counts misses and may be nil.
func getBuf(n int, m *Metrics) *[]byte {
	if n <= 0 {
		b := []byte(nil)
		return &b
	}
	cls := poolClass(n)
	if cls <= maxPoolClass {
		if v := bufPools[cls].Get(); v != nil {
			pb := v.(*[]byte)
			*pb = (*pb)[:n]
			return pb
		}
	}
	m.poolMiss()
	size := n
	if cls <= maxPoolClass {
		size = 1 << cls
	}
	b := make([]byte, size)[:n]
	return &b
}

// AcquireBuffer hands out a length-n buffer from the codec's size-class
// pools for callers outside this package (the streaming put path stages
// each stripe in one). Contents are stale pool data — overwrite every
// byte you expose — and the same ownership rule applies: the buffer is
// exclusively owned until ReleaseBuffer.
func AcquireBuffer(n int) *[]byte { return getBuf(n, nil) }

// ReleaseBuffer returns a buffer obtained from AcquireBuffer to its size
// class. No slice of it may be used afterwards.
func ReleaseBuffer(pb *[]byte) { putBuf(pb) }

// putBuf returns a buffer to its size class. Buffers that did not come
// from the pool (capacity not an in-range power of two) are dropped for
// the garbage collector.
func putBuf(pb *[]byte) {
	if pb == nil {
		return
	}
	c := cap(*pb)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c - 1))
	if cls < minPoolClass || cls > maxPoolClass {
		return
	}
	*pb = (*pb)[:c]
	bufPools[cls].Put(pb)
}
