package erasure

import (
	"bytes"
	"math/rand"
	"testing"

	"ecstore/internal/gf256"
	"ecstore/internal/obs"
)

func testBlock(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// TestEncodePooledMatchesEncode pins the aliasing, pooled encode against
// the copying one across block sizes that exercise every padding shape:
// empty, sub-chunk, exact multiples, and ragged tails.
func TestEncodePooledMatchesEncode(t *testing.T) {
	for _, kr := range [][2]int{{2, 1}, {2, 2}, {4, 2}, {6, 3}, {5, 1}} {
		c := mustCodec(t, kr[0], kr[1])
		for _, n := range []int{0, 1, 2, kr[0] - 1, kr[0], kr[0] + 1, 63, 64, 1000, 4096, 4097} {
			data := testBlock(int64(n+1), n)
			want, err := c.Encode(data)
			if err != nil {
				t.Fatalf("Encode(%d): %v", n, err)
			}
			st, err := c.EncodePooled(data)
			if err != nil {
				t.Fatalf("EncodePooled(%d): %v", n, err)
			}
			got := st.Chunks()
			if len(got) != len(want) {
				t.Fatalf("EncodePooled(%d): %d chunks, want %d", n, len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("RS(%d,%d) block %d: chunk %d differs between Encode and EncodePooled", kr[0], kr[1], n, i)
				}
			}
			st.Release()
		}
	}
}

// TestEncodePooledAliasesData checks the zero-copy contract: full data
// chunks alias the source block, and only padded tails plus parity live
// in the pooled backing.
func TestEncodePooledAliasesData(t *testing.T) {
	c := mustCodec(t, 4, 2)
	data := testBlock(7, 4096) // 4 chunks of 1024, no padding
	st, err := c.EncodePooled(data)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Release()
	for i := 0; i < 4; i++ {
		if &st.Chunks()[i][0] != &data[i*1024] {
			t.Errorf("data chunk %d does not alias the source block", i)
		}
	}
	for p := 4; p < 6; p++ {
		ch := st.Chunks()[p]
		if &ch[0] == &data[0] {
			t.Errorf("parity chunk %d aliases the source block", p)
		}
	}
}

// TestStripePoolReuse releases a stripe and encodes again: the steady
// state must recycle the backing instead of allocating, which the
// pool-miss counter makes observable.
func TestStripePoolReuse(t *testing.T) {
	reg := obs.NewRegistry()
	misses := reg.Counter("test_pool_miss_total", "pool misses")
	c, err := NewCodecWith(4, 2, Options{Metrics: &Metrics{PoolMisses: misses}})
	if err != nil {
		t.Fatal(err)
	}
	data := testBlock(8, 1<<20)
	const iters = 10
	for i := 0; i < iters; i++ {
		st, err := c.EncodePooled(data)
		if err != nil {
			t.Fatal(err)
		}
		st.Release()
	}
	// GC can drain a sync.Pool between iterations, so allow slack, but
	// steady state must hit far more often than it misses.
	if got := misses.Value(); got >= iters {
		t.Fatalf("pool misses = %d over %d iterations, want reuse", got, iters)
	}
}

// TestDecodeIntoAllErasurePatterns decodes every k-subset of chunks for
// small codecs, covering healthy, parity-assisted, and maximally
// degraded reads, with both aligned and ragged block lengths.
func TestDecodeIntoAllErasurePatterns(t *testing.T) {
	for _, kr := range [][2]int{{2, 1}, {2, 2}, {3, 2}, {4, 2}} {
		k, r := kr[0], kr[1]
		c := mustCodec(t, k, r)
		for _, n := range []int{0, 1, 5, 1024, 1031} {
			data := testBlock(int64(n+13), n)
			chunks, err := c.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			total := k + r
			for mask := 0; mask < 1<<total; mask++ {
				avail := make(map[int][]byte)
				for id := 0; id < total; id++ {
					if mask&(1<<id) != 0 {
						avail[id] = chunks[id]
					}
				}
				got, err := c.Decode(avail, n)
				if popcount(mask) < k {
					if err == nil {
						t.Fatalf("RS(%d,%d) decode with %d chunks succeeded", k, r, popcount(mask))
					}
					continue
				}
				if err != nil {
					t.Fatalf("RS(%d,%d) n=%d mask=%b: %v", k, r, n, mask, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("RS(%d,%d) n=%d mask=%b: decode mismatch", k, r, n, mask)
				}
			}
		}
	}
}

func popcount(v int) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// TestReconstructChunkAllPatterns rebuilds every chunk id from every
// viable k-subset and checks it against the original encoding.
func TestReconstructChunkAllPatterns(t *testing.T) {
	c := mustCodec(t, 3, 2)
	data := testBlock(21, 999)
	chunks, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 1<<5; mask++ {
		if popcount(mask) < 3 {
			continue
		}
		avail := make(map[int][]byte)
		for id := 0; id < 5; id++ {
			if mask&(1<<id) != 0 {
				avail[id] = chunks[id]
			}
		}
		for id := 0; id < 5; id++ {
			got, err := c.ReconstructChunk(avail, id)
			if err != nil {
				t.Fatalf("mask=%b id=%d: %v", mask, id, err)
			}
			if !bytes.Equal(got, chunks[id]) {
				t.Fatalf("mask=%b id=%d: reconstruction mismatch", mask, id)
			}
		}
	}
}

// TestDecodeMatrixCache checks that repeated degraded decodes with the
// same surviving set invert the generator sub-matrix exactly once.
func TestDecodeMatrixCache(t *testing.T) {
	c := mustCodec(t, 4, 2)
	data := testBlock(5, 4096)
	chunks, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	avail := map[int][]byte{0: chunks[0], 2: chunks[2], 3: chunks[3], 4: chunks[4]}
	for i := 0; i < 3; i++ {
		got, err := c.Decode(avail, len(data))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("decode mismatch")
		}
	}
	c.decMu.RLock()
	entries := len(c.decCache)
	c.decMu.RUnlock()
	if entries != 1 {
		t.Fatalf("decode-matrix cache has %d entries, want 1", entries)
	}
}

// TestStripeShardingMatchesInline forces multi-goroutine sharding with a
// tiny threshold and checks byte identity with the inline path.
func TestStripeShardingMatchesInline(t *testing.T) {
	inline := mustCodec(t, 4, 2)
	sharded, err := NewCodecWith(4, 2, Options{StripeThreshold: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	data := testBlock(9, 1<<20|577) // ragged, above any shard rounding
	want, err := inline.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("sharded encode: chunk %d differs", i)
		}
	}
	avail := map[int][]byte{1: got[1], 2: got[2], 4: got[4], 5: got[5]}
	dec, err := sharded.Decode(avail, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatal("sharded degraded decode mismatch")
	}
}

// TestCodecSteadyStateAllocations is the ISSUE's zero-alloc gate: with a
// warm pool and a warm decode-matrix cache, EncodePooled+Release and
// DecodeInto perform zero per-call chunk allocations.
func TestCodecSteadyStateAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool does not pool under the race detector")
	}
	// Sharding is disabled: the sharded path trades closure + goroutine
	// allocations for parallelism, which is the configured exception to
	// the zero-alloc rule.
	c, err := NewCodecWith(4, 2, Options{StripeThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	data := testBlock(11, 1<<20)
	chunks, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(20, func() {
		st, err := c.EncodePooled(data)
		if err != nil {
			t.Fatal(err)
		}
		st.Release()
	}); n > 0 {
		t.Errorf("EncodePooled steady state allocates %.1f times per call, want 0", n)
	}

	dst := make([]byte, len(data))
	healthy := map[int][]byte{0: chunks[0], 1: chunks[1], 2: chunks[2], 3: chunks[3]}
	if n := testing.AllocsPerRun(20, func() {
		if err := c.DecodeInto(dst, healthy); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("healthy DecodeInto allocates %.1f times per call, want 0", n)
	}

	degraded := map[int][]byte{0: chunks[0], 2: chunks[2], 3: chunks[3], 5: chunks[5]}
	if err := c.DecodeInto(dst, degraded); err != nil { // warm the matrix cache
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(20, func() {
		if err := c.DecodeInto(dst, degraded); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("degraded DecodeInto allocates %.1f times per call, want 0", n)
	}
}

// TestEmptyBlockRoundTrip covers the ChunkSize(0) consistency fix at the
// codec layer: every chunk of an empty block is exactly ChunkSize(0)
// bytes and the block decodes back to empty.
func TestEmptyBlockRoundTrip(t *testing.T) {
	c := mustCodec(t, 4, 2)
	if got := c.ChunkSize(0); got != 1 {
		t.Fatalf("ChunkSize(0) = %d, want 1", got)
	}
	chunks, err := c.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, ch := range chunks {
		if len(ch) != c.ChunkSize(0) {
			t.Fatalf("chunk %d has %d bytes, want ChunkSize(0)=%d", i, len(ch), c.ChunkSize(0))
		}
	}
	avail := map[int][]byte{1: chunks[1], 3: chunks[3], 4: chunks[4], 5: chunks[5]}
	got, err := c.Decode(avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d bytes from empty block", len(got))
	}
}

func benchmarkCodec(b *testing.B, accel bool, run func(b *testing.B, c *Codec, data []byte, chunks [][]byte)) {
	defer gf256.SetAccel(gf256.SetAccel(accel))
	c, err := NewCodec(2, 2)
	if err != nil {
		b.Fatal(err)
	}
	data := testBlock(1, 1<<20)
	chunks, err := c.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	run(b, c, data, chunks)
}

// BenchmarkCodecEncode1MB measures the pooled hot-path encode of a 1 MiB
// block with RS(2,2); the scalar variant is the pre-kernel baseline.
func BenchmarkCodecEncode1MB(b *testing.B) {
	for _, mode := range []struct {
		name  string
		accel bool
	}{{"kernel", true}, {"scalar", false}} {
		b.Run(mode.name, func(b *testing.B) {
			benchmarkCodec(b, mode.accel, func(b *testing.B, c *Codec, data []byte, _ [][]byte) {
				for i := 0; i < b.N; i++ {
					st, err := c.EncodePooled(data)
					if err != nil {
						b.Fatal(err)
					}
					st.Release()
				}
			})
		})
	}
}

// BenchmarkCodecDecodeHealthy1MB reads with all data chunks present.
func BenchmarkCodecDecodeHealthy1MB(b *testing.B) {
	benchmarkCodec(b, true, func(b *testing.B, c *Codec, data []byte, chunks [][]byte) {
		avail := map[int][]byte{0: chunks[0], 1: chunks[1]}
		dst := make([]byte, len(data))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.DecodeInto(dst, avail); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCodecDecodeDegraded1MB reads with a data chunk lost,
// reconstructing through parity.
func BenchmarkCodecDecodeDegraded1MB(b *testing.B) {
	for _, mode := range []struct {
		name  string
		accel bool
	}{{"kernel", true}, {"scalar", false}} {
		b.Run(mode.name, func(b *testing.B) {
			benchmarkCodec(b, mode.accel, func(b *testing.B, c *Codec, data []byte, chunks [][]byte) {
				avail := map[int][]byte{1: chunks[1], 2: chunks[2]}
				dst := make([]byte, len(data))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.DecodeInto(dst, avail); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkCodecEncodeRS63 is the wider paper configuration.
func BenchmarkCodecEncodeRS63(b *testing.B) {
	defer gf256.SetAccel(gf256.SetAccel(true))
	c, err := NewCodec(6, 3)
	if err != nil {
		b.Fatal(err)
	}
	data := testBlock(2, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := c.EncodePooled(data)
		if err != nil {
			b.Fatal(err)
		}
		st.Release()
	}
}

var sinkChunks [][]byte

// BenchmarkCodecEncodeLegacy1MB is the copying Encode path, kept for
// comparison with the pre-PR baseline (fresh allocations per call).
func BenchmarkCodecEncodeLegacy1MB(b *testing.B) {
	benchmarkCodec(b, true, func(b *testing.B, c *Codec, data []byte, _ [][]byte) {
		for i := 0; i < b.N; i++ {
			chunks, err := c.Encode(data)
			if err != nil {
				b.Fatal(err)
			}
			sinkChunks = chunks
		}
	})
}

func FuzzDecodeAdversarial(f *testing.F) {
	f.Add([]byte("hello erasure"), uint16(0x3f), uint8(0), uint8(0))
	f.Add([]byte{}, uint16(0x0b), uint8(1), uint8(3))
	f.Add(bytes.Repeat([]byte{0xA5}, 257), uint16(0x35), uint8(2), uint8(200))
	f.Fuzz(func(t *testing.T, data []byte, mask uint16, tamperID, tamperLen uint8) {
		const k, r = 3, 3
		c, err := NewCodec(k, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		chunks, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		avail := make(map[int][]byte)
		n := 0
		for id := 0; id < k+r; id++ {
			if mask&(1<<id) != 0 {
				avail[id] = chunks[id]
				n++
			}
		}
		// Adversarial entries: out-of-range ids and a resized chunk.
		avail[-1] = chunks[0]
		avail[k+r+3] = chunks[0]
		tampered := false
		if tid := int(tamperID) % (k + r); avail[tid] != nil && int(tamperLen) != len(avail[tid]) {
			avail[tid] = make([]byte, tamperLen)
			tampered = true
		}

		got, err := c.Decode(avail, len(data))
		if err != nil {
			if !tampered && n >= k {
				t.Fatalf("decode failed with %d intact chunks: %v", n, err)
			}
			return
		}
		if tampered {
			return // sizes happened to stay consistent; nothing to check
		}
		if !bytes.Equal(got, data) {
			t.Fatal("decode round-trip mismatch")
		}
		for id := 0; id < k+r; id++ {
			rec, err := c.ReconstructChunk(avail, id)
			if err != nil {
				t.Fatalf("reconstruct %d: %v", id, err)
			}
			if !bytes.Equal(rec, chunks[id]) {
				t.Fatalf("reconstruct %d mismatch", id)
			}
		}
	})
}
