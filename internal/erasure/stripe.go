package erasure

import (
	"sync"

	"ecstore/internal/gf256"
	"ecstore/internal/obs"
)

// Metrics receives codec throughput and buffer-pool counters. All
// fields and the receiver itself are nil-safe, so an unwired codec pays
// only nil checks.
type Metrics struct {
	// EncodeBytes counts block bytes erasure-encoded.
	EncodeBytes *obs.Counter
	// DecodeBytes counts block bytes reconstructed by decode.
	DecodeBytes *obs.Counter
	// PoolMisses counts chunk-buffer pool misses (a fresh allocation).
	PoolMisses *obs.Counter
}

func (m *Metrics) poolMiss() {
	if m != nil {
		m.PoolMisses.Add(1)
	}
}

func (m *Metrics) encoded(n int) {
	if m != nil {
		m.EncodeBytes.Add(int64(n))
	}
}

func (m *Metrics) decoded(n int) {
	if m != nil {
		m.DecodeBytes.Add(int64(n))
	}
}

// Stripe is the result of EncodePooled: the k+r chunks of one encoded
// block, backed by at most one pooled allocation.
//
// Ownership: chunk ids [0,k) may alias the block passed to
// EncodePooled; padded data chunks and all parity chunks live in the
// pooled backing array. The caller must treat every chunk as read-only,
// must not retain any chunk past Release, and must not mutate the
// source block until Release. Consumers that outlive the stripe (site
// stores, the block cache) copy on ingest.
type Stripe struct {
	chunks  [][]byte
	backing *[]byte
}

// Chunks returns the k+r chunks indexed by chunk id: ids [0,k) are data
// chunks, ids [k,k+r) are parity chunks.
func (s *Stripe) Chunks() [][]byte { return s.chunks }

// Release returns the stripe's pooled backing for reuse. No chunk may
// be used afterwards. Release is idempotent but not concurrency-safe.
func (s *Stripe) Release() {
	if s.backing == nil && s.chunks == nil {
		return
	}
	putBuf(s.backing)
	s.backing = nil
	clear(s.chunks)
	s.chunks = s.chunks[:0]
	stripePool.Put(s)
}

var stripePool = sync.Pool{New: func() any { return new(Stripe) }}

// EncodePooled splits a block into k data chunks and computes its r
// parity chunks without copying the data path: data chunks alias data
// wherever a full chunk is available, and only the zero-padded tail and
// the parity chunks are written into a pooled backing array. See Stripe
// for the ownership rules. Use Encode when the chunks must outlive the
// source block.
func (c *Codec) EncodePooled(data []byte) (*Stripe, error) {
	size := c.ChunkSize(len(data))
	total := c.k + c.r

	st := stripePool.Get().(*Stripe)
	if cap(st.chunks) < total {
		st.chunks = make([][]byte, total)
	} else {
		st.chunks = st.chunks[:total]
	}

	// Chunks that cannot alias data (short or empty tails) are packed in
	// front of the parity chunks in one pooled backing array.
	nPad := 0
	for i := 0; i < c.k; i++ {
		if i*size+size > len(data) {
			nPad++
		}
	}
	st.backing = getBuf((nPad+c.r)*size, c.metrics)
	backing := *st.backing

	pad := 0
	for i := 0; i < c.k; i++ {
		lo := i * size
		hi := lo + size
		if hi <= len(data) {
			st.chunks[i] = data[lo:hi:hi]
			continue
		}
		if lo > len(data) {
			lo = len(data)
		}
		b := backing[pad*size : (pad+1)*size]
		n := copy(b, data[lo:])
		clear(b[n:])
		st.chunks[i] = b
		pad++
	}
	for p := 0; p < c.r; p++ {
		st.chunks[c.k+p] = backing[(nPad+p)*size : (nPad+p+1)*size]
	}

	// The inline path stays closure-free: evaluating the shard closure
	// would cost an allocation per encode even when sharding never runs.
	if size < c.stripeMin || c.workers <= 1 {
		c.encodeParity(st.chunks, 0, size)
	} else {
		c.shardRange(size, func(lo, hi int) {
			c.encodeParity(st.chunks, lo, hi)
		})
	}
	c.metrics.encoded(len(data))
	return st, nil
}

// encodeParity fills the byte range [lo, hi) of every parity chunk from
// the data chunks.
func (c *Codec) encodeParity(chunks [][]byte, lo, hi int) {
	for p := 0; p < c.r; p++ {
		row := c.encode.Row(c.k + p)
		parity := chunks[c.k+p][lo:hi]
		gf256.MulSlice(row[0], chunks[0][lo:hi], parity)
		for j := 1; j < c.k; j++ {
			gf256.MulAddSlice(row[j], chunks[j][lo:hi], parity)
		}
	}
}

// shardRange runs fn over [0, size) — in shards on separate goroutines
// when the stripe is at least StripeThreshold bytes and more than one
// worker is configured, inline otherwise. Shard boundaries are rounded
// to 64 bytes so the vector kernels keep full lanes and shards do not
// share cache lines.
func (c *Codec) shardRange(size int, fn func(lo, hi int)) {
	w := c.workers
	if size < c.stripeMin || w <= 1 {
		fn(0, size)
		return
	}
	step := (size + w - 1) / w
	step = (step + 63) &^ 63
	var wg sync.WaitGroup
	for lo := step; lo < size; lo += step {
		hi := lo + step
		if hi > size {
			hi = size
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	fn(0, min(step, size))
	wg.Wait()
}
