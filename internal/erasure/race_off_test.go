//go:build !race

package erasure

// raceEnabled reports whether the race detector is on; allocation
// assertions are skipped under -race because sync.Pool intentionally
// degrades there.
const raceEnabled = false
