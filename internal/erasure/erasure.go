// Package erasure implements a systematic Reed-Solomon erasure codec over
// GF(2^8), the coding substrate of EC-Store (the paper uses Jerasure 2.0).
//
// A Codec for RS(k, r) splits a block into k data chunks and derives r
// parity chunks. Any k of the k+r chunks reconstruct the block; the code is
// maximum distance separable, so the system tolerates the loss of any r
// chunks (r-fault tolerance in the paper's terminology).
//
// The generator matrix is the (k+r) x k Vandermonde matrix normalized so
// its top k x k block is the identity (right-multiplication by the inverse
// of the top block). Right-multiplying by an invertible matrix preserves
// the rank of every row subset, so the "any k rows invertible" Vandermonde
// property carries over to the systematic form.
package erasure

import (
	"errors"
	"fmt"

	"ecstore/internal/gf256"
	"ecstore/internal/matrix"
)

var (
	// ErrInvalidParams reports unusable (k, r) parameters.
	ErrInvalidParams = errors.New("erasure: invalid coding parameters")
	// ErrNotEnoughChunks reports fewer than k available chunks at decode.
	ErrNotEnoughChunks = errors.New("erasure: not enough chunks to reconstruct")
	// ErrChunkSizeMismatch reports chunks of inconsistent length.
	ErrChunkSizeMismatch = errors.New("erasure: chunk size mismatch")
)

// MaxTotalChunks bounds k+r: evaluation points of the Vandermonde matrix
// must be distinct elements of GF(2^8).
const MaxTotalChunks = 256

// Codec encodes and decodes blocks with a fixed RS(k, r) scheme. It is
// immutable after construction and safe for concurrent use.
type Codec struct {
	k int
	r int
	// encode is the full (k+r) x k systematic generator matrix.
	encode *matrix.Matrix
}

// NewCodec constructs a systematic RS(k, r) codec. k must be at least 2 (a
// single data chunk is replication, which the paper treats separately) and
// r at least 1.
func NewCodec(k, r int) (*Codec, error) {
	if k < 2 || r < 1 || k+r > MaxTotalChunks {
		return nil, fmt.Errorf("%w: k=%d r=%d", ErrInvalidParams, k, r)
	}
	vand := matrix.Vandermonde(k+r, k)
	top, err := vand.SubMatrix(0, k, 0, k)
	if err != nil {
		return nil, fmt.Errorf("extract top block: %w", err)
	}
	topInv, err := top.Invert()
	if err != nil {
		return nil, fmt.Errorf("normalize generator: %w", err)
	}
	enc, err := vand.Mul(topInv)
	if err != nil {
		return nil, fmt.Errorf("build generator: %w", err)
	}
	return &Codec{k: k, r: r, encode: enc}, nil
}

// K returns the number of data chunks.
func (c *Codec) K() int { return c.k }

// R returns the number of parity chunks.
func (c *Codec) R() int { return c.r }

// TotalChunks returns k+r.
func (c *Codec) TotalChunks() int { return c.k + c.r }

// ChunkSize returns the per-chunk size for a block of blockLen bytes:
// ceil(blockLen / k).
func (c *Codec) ChunkSize(blockLen int) int {
	return (blockLen + c.k - 1) / c.k
}

// StorageOverhead returns the storage expansion factor (k+r)/k.
func (c *Codec) StorageOverhead() float64 {
	return float64(c.k+c.r) / float64(c.k)
}

// Split partitions block data into k equally sized data chunks, zero-padding
// the final chunk. The returned chunks do not alias data.
func (c *Codec) Split(data []byte) [][]byte {
	size := c.ChunkSize(len(data))
	if size == 0 {
		size = 1 // encode empty blocks as a single zero byte per chunk
	}
	chunks := make([][]byte, c.k)
	for i := range chunks {
		chunks[i] = make([]byte, size)
		lo := i * size
		if lo < len(data) {
			hi := lo + size
			if hi > len(data) {
				hi = len(data)
			}
			copy(chunks[i], data[lo:hi])
		}
	}
	return chunks
}

// Join concatenates data chunks and truncates to blockLen, the inverse of
// Split.
func (c *Codec) Join(chunks [][]byte, blockLen int) ([]byte, error) {
	if len(chunks) < c.k {
		return nil, fmt.Errorf("%w: have %d data chunks, want %d", ErrNotEnoughChunks, len(chunks), c.k)
	}
	size := len(chunks[0])
	out := make([]byte, 0, c.k*size)
	for i := 0; i < c.k; i++ {
		if len(chunks[i]) != size {
			return nil, fmt.Errorf("%w: chunk %d has %d bytes, want %d", ErrChunkSizeMismatch, i, len(chunks[i]), size)
		}
		out = append(out, chunks[i]...)
	}
	if blockLen > len(out) {
		return nil, fmt.Errorf("%w: joined %d bytes, block needs %d", ErrChunkSizeMismatch, len(out), blockLen)
	}
	return out[:blockLen], nil
}

// Encode splits a block into k data chunks and computes its r parity
// chunks, returning all k+r chunks indexed by chunk id: ids [0, k) are data
// chunks, ids [k, k+r) are parity chunks.
func (c *Codec) Encode(data []byte) ([][]byte, error) {
	dataChunks := c.Split(data)
	size := len(dataChunks[0])
	chunks := make([][]byte, c.k+c.r)
	copy(chunks, dataChunks)
	for p := 0; p < c.r; p++ {
		parity := make([]byte, size)
		row := c.encode.Row(c.k + p)
		for j := 0; j < c.k; j++ {
			gf256.MulAddSlice(row[j], dataChunks[j], parity)
		}
		chunks[c.k+p] = parity
	}
	return chunks, nil
}

// Decode reconstructs the original block of blockLen bytes from any k
// available chunks. available maps chunk id -> chunk data; entries may be
// nil or absent for missing chunks. Extra chunks beyond k are ignored
// (lowest chunk ids are preferred, so all-data-chunk decodes skip matrix
// work entirely).
func (c *Codec) Decode(available map[int][]byte, blockLen int) ([]byte, error) {
	dataChunks, err := c.reconstructData(available)
	if err != nil {
		return nil, err
	}
	return c.Join(dataChunks, blockLen)
}

// ReconstructChunk recomputes the single chunk with the given id from any k
// available chunks, as done by the repair service after a site failure.
func (c *Codec) ReconstructChunk(available map[int][]byte, id int) ([]byte, error) {
	if id < 0 || id >= c.k+c.r {
		return nil, fmt.Errorf("%w: chunk id %d out of range [0,%d)", ErrInvalidParams, id, c.k+c.r)
	}
	if chunk, ok := available[id]; ok && chunk != nil {
		out := make([]byte, len(chunk))
		copy(out, chunk)
		return out, nil
	}
	dataChunks, err := c.reconstructData(available)
	if err != nil {
		return nil, err
	}
	if id < c.k {
		return dataChunks[id], nil
	}
	parity := make([]byte, len(dataChunks[0]))
	row := c.encode.Row(id)
	for j := 0; j < c.k; j++ {
		gf256.MulAddSlice(row[j], dataChunks[j], parity)
	}
	return parity, nil
}

// reconstructData returns the k data chunks, decoding through the inverted
// generator sub-matrix when any data chunk is missing.
func (c *Codec) reconstructData(available map[int][]byte) ([][]byte, error) {
	ids := c.pickChunks(available)
	if len(ids) < c.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughChunks, len(ids), c.k)
	}
	size := len(available[ids[0]])
	for _, id := range ids {
		if len(available[id]) != size {
			return nil, fmt.Errorf("%w: chunk %d has %d bytes, want %d", ErrChunkSizeMismatch, id, len(available[id]), size)
		}
	}

	allData := true
	for i, id := range ids {
		if id != i {
			allData = false
			break
		}
	}
	if allData {
		out := make([][]byte, c.k)
		for i := 0; i < c.k; i++ {
			out[i] = make([]byte, size)
			copy(out[i], available[i])
		}
		return out, nil
	}

	sub, err := c.encode.SelectRows(ids)
	if err != nil {
		return nil, fmt.Errorf("select generator rows: %w", err)
	}
	dec, err := sub.Invert()
	if err != nil {
		// Cannot happen for a correct MDS construction; surface it
		// rather than panic so a corrupted codec fails loudly upstream.
		return nil, fmt.Errorf("invert decode matrix: %w", err)
	}
	out := make([][]byte, c.k)
	for i := 0; i < c.k; i++ {
		out[i] = make([]byte, size)
		row := dec.Row(i)
		for j, id := range ids {
			gf256.MulAddSlice(row[j], available[id], out[i])
		}
	}
	return out, nil
}

// pickChunks returns up to k available chunk ids in ascending order,
// preferring data chunks (lower ids) to minimize decode work.
func (c *Codec) pickChunks(available map[int][]byte) []int {
	ids := make([]int, 0, c.k)
	for id := 0; id < c.k+c.r && len(ids) < c.k; id++ {
		if chunk, ok := available[id]; ok && chunk != nil {
			ids = append(ids, id)
		}
	}
	return ids
}
