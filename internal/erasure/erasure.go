// Package erasure implements a systematic Reed-Solomon erasure codec over
// GF(2^8), the coding substrate of EC-Store (the paper uses Jerasure 2.0).
//
// A Codec for RS(k, r) splits a block into k data chunks and derives r
// parity chunks. Any k of the k+r chunks reconstruct the block; the code is
// maximum distance separable, so the system tolerates the loss of any r
// chunks (r-fault tolerance in the paper's terminology).
//
// The generator matrix is the (k+r) x k Vandermonde matrix normalized so
// its top k x k block is the identity (right-multiplication by the inverse
// of the top block). Right-multiplying by an invertible matrix preserves
// the rank of every row subset, so the "any k rows invertible" Vandermonde
// property carries over to the systematic form.
//
// Invariants the data path depends on:
//
//   - Pooled-stripe ownership. EncodePooled returns a Stripe whose data
//     chunks may alias the caller's block and whose padding and parity
//     live in pooled buffers; the chunks are read-only and die at
//     Release. Consumers that outlive the stripe (site stores, the
//     decoded-block cache) must copy on ingest. DecodeInto writes into
//     caller-owned memory and never retains its inputs.
//
//   - 64-byte shard boundaries. Large stripes are encoded by up to
//     min(GOMAXPROCS, 8) goroutines split on 64-byte boundaries, so no
//     two workers ever touch the same cache line; work order changes
//     across runs, output bytes never do.
//
//   - Byte-position independence. Parity is computed byte-position-wise,
//     so any per-chunk window [lo, hi) taken across all chunks forms
//     valid codewords; Layout maps block byte ranges to such windows and
//     the same Codec en/decodes them (the basis of GetRange, DESIGN.md
//     §13).
package erasure

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"ecstore/internal/gf256"
	"ecstore/internal/matrix"
)

var (
	// ErrInvalidParams reports unusable (k, r) parameters.
	ErrInvalidParams = errors.New("erasure: invalid coding parameters")
	// ErrNotEnoughChunks reports fewer than k available chunks at decode.
	ErrNotEnoughChunks = errors.New("erasure: not enough chunks to reconstruct")
	// ErrChunkSizeMismatch reports chunks of inconsistent length.
	ErrChunkSizeMismatch = errors.New("erasure: chunk size mismatch")
)

// MaxTotalChunks bounds k+r: evaluation points of the Vandermonde matrix
// must be distinct elements of GF(2^8).
const MaxTotalChunks = 256

// Codec encodes and decodes blocks with a fixed RS(k, r) scheme. Its
// configuration is immutable after construction and all methods are safe
// for concurrent use (the decode-matrix cache is internally locked).
type Codec struct {
	k int
	r int
	// encode is the full (k+r) x k systematic generator matrix.
	encode *matrix.Matrix

	// workers and stripeMin are the resolved stripe-sharding settings.
	workers   int
	stripeMin int
	metrics   *Metrics

	// decCache memoizes inverted decode matrices keyed by the bitmask of
	// the chosen chunk ids, so steady-state degraded reads skip the
	// Gaussian elimination entirely. Only populated when k+r <= 64.
	decMu    sync.RWMutex
	decCache map[uint64]*matrix.Matrix
}

// Options tune a Codec's data path. The zero value picks defaults.
type Options struct {
	// StripeThreshold is the chunk size in bytes at or above which
	// encode and decode shard the stripe across goroutines. 0 means
	// DefaultStripeThreshold; negative disables sharding.
	StripeThreshold int
	// Workers caps the goroutines per sharded call. 0 means GOMAXPROCS,
	// at most 8. Sharding only happens when Workers resolves above 1.
	Workers int
	// Metrics, when non-nil, receives throughput and pool counters.
	Metrics *Metrics
}

// DefaultStripeThreshold is the chunk size at which splitting the
// stripe across cores starts to beat single-threaded kernel throughput
// (below it, goroutine handoff costs more than the memory pass saves).
const DefaultStripeThreshold = 128 << 10

// NewCodec constructs a systematic RS(k, r) codec with default Options.
// k must be at least 2 (a single data chunk is replication, which the
// paper treats separately) and r at least 1.
func NewCodec(k, r int) (*Codec, error) {
	return NewCodecWith(k, r, Options{})
}

// NewCodecWith constructs a systematic RS(k, r) codec with explicit
// data-path options.
func NewCodecWith(k, r int, opts Options) (*Codec, error) {
	if k < 2 || r < 1 || k+r > MaxTotalChunks {
		return nil, fmt.Errorf("%w: k=%d r=%d", ErrInvalidParams, k, r)
	}
	vand := matrix.Vandermonde(k+r, k)
	top, err := vand.SubMatrix(0, k, 0, k)
	if err != nil {
		return nil, fmt.Errorf("extract top block: %w", err)
	}
	topInv, err := top.Invert()
	if err != nil {
		return nil, fmt.Errorf("normalize generator: %w", err)
	}
	enc, err := vand.Mul(topInv)
	if err != nil {
		return nil, fmt.Errorf("build generator: %w", err)
	}
	c := &Codec{k: k, r: r, encode: enc, metrics: opts.Metrics}
	switch {
	case opts.StripeThreshold < 0:
		c.stripeMin = int(^uint(0) >> 1)
	case opts.StripeThreshold == 0:
		c.stripeMin = DefaultStripeThreshold
	default:
		c.stripeMin = opts.StripeThreshold
	}
	c.workers = opts.Workers
	if c.workers == 0 {
		c.workers = runtime.GOMAXPROCS(0)
		if c.workers > 8 {
			c.workers = 8
		}
	}
	return c, nil
}

// K returns the number of data chunks.
func (c *Codec) K() int { return c.k }

// R returns the number of parity chunks.
func (c *Codec) R() int { return c.r }

// TotalChunks returns k+r.
func (c *Codec) TotalChunks() int { return c.k + c.r }

// ChunkSize returns the per-chunk size for a block of blockLen bytes:
// ceil(blockLen / k), minimum 1. An empty block still stores one zero
// byte per chunk (Split pads every chunk to this size), so the size
// registered in block metadata — which feeds the cost model's m_j·z_i
// term — always equals the bytes actually stored.
func (c *Codec) ChunkSize(blockLen int) int {
	if blockLen == 0 {
		return 1
	}
	return (blockLen + c.k - 1) / c.k
}

// StorageOverhead returns the storage expansion factor (k+r)/k.
func (c *Codec) StorageOverhead() float64 {
	return float64(c.k+c.r) / float64(c.k)
}

// Split partitions block data into k equally sized data chunks, zero-padding
// the final chunk. The returned chunks do not alias data.
func (c *Codec) Split(data []byte) [][]byte {
	size := c.ChunkSize(len(data))
	chunks := make([][]byte, c.k)
	for i := range chunks {
		chunks[i] = make([]byte, size)
		lo := i * size
		if lo < len(data) {
			hi := lo + size
			if hi > len(data) {
				hi = len(data)
			}
			copy(chunks[i], data[lo:hi])
		}
	}
	return chunks
}

// Join concatenates data chunks and truncates to blockLen, the inverse of
// Split.
func (c *Codec) Join(chunks [][]byte, blockLen int) ([]byte, error) {
	if len(chunks) < c.k {
		return nil, fmt.Errorf("%w: have %d data chunks, want %d", ErrNotEnoughChunks, len(chunks), c.k)
	}
	size := len(chunks[0])
	out := make([]byte, 0, c.k*size)
	for i := 0; i < c.k; i++ {
		if len(chunks[i]) != size {
			return nil, fmt.Errorf("%w: chunk %d has %d bytes, want %d", ErrChunkSizeMismatch, i, len(chunks[i]), size)
		}
		out = append(out, chunks[i]...)
	}
	if blockLen > len(out) {
		return nil, fmt.Errorf("%w: joined %d bytes, block needs %d", ErrChunkSizeMismatch, len(out), blockLen)
	}
	return out[:blockLen], nil
}

// Encode splits a block into k data chunks and computes its r parity
// chunks, returning all k+r chunks indexed by chunk id: ids [0, k) are data
// chunks, ids [k, k+r) are parity chunks. The returned chunks are freshly
// allocated and do not alias data; the hot path uses EncodePooled, which
// avoids the copies.
func (c *Codec) Encode(data []byte) ([][]byte, error) {
	st, err := c.EncodePooled(data)
	if err != nil {
		return nil, err
	}
	defer st.Release()
	size := len(st.chunks[0])
	backing := make([]byte, (c.k+c.r)*size)
	chunks := make([][]byte, c.k+c.r)
	for i, ch := range st.chunks {
		out := backing[i*size : (i+1)*size : (i+1)*size]
		copy(out, ch)
		chunks[i] = out
	}
	return chunks, nil
}

// Decode reconstructs the original block of blockLen bytes from any k
// available chunks. available maps chunk id -> chunk data; entries may be
// nil or absent for missing chunks. Extra chunks beyond k are ignored
// (lowest chunk ids are preferred, so all-data-chunk decodes skip matrix
// work entirely).
func (c *Codec) Decode(available map[int][]byte, blockLen int) ([]byte, error) {
	dst := make([]byte, blockLen)
	if err := c.DecodeInto(dst, available); err != nil {
		return nil, err
	}
	return dst, nil
}

// decodeScratch carries the per-call id workspaces of DecodeInto and
// ReconstructChunk. Pooled (codecs are shared across goroutines) so the
// steady state allocates nothing; the slices sub-slice arr and never
// outlive the call.
type decodeScratch struct {
	ids     []int
	missing []int
	arr     [2 * MaxTotalChunks]int
}

var scratchPool = sync.Pool{New: func() any { return new(decodeScratch) }}

func getScratch() *decodeScratch {
	sc := scratchPool.Get().(*decodeScratch)
	sc.ids = sc.arr[:0:MaxTotalChunks]
	sc.missing = sc.arr[MaxTotalChunks:MaxTotalChunks]
	return sc
}

// mulLine computes out = sum_j row[j] * available[ids[j]] restricted to
// out's length, sharding across goroutines when the line is long enough.
// The inline path must stay closure-free: a closure would pin the
// caller's scratch to the heap and cost an allocation per call.
func (c *Codec) mulLine(row []byte, ids []int, available map[int][]byte, out []byte) {
	if len(out) < c.stripeMin || c.workers <= 1 {
		gf256.MulSlice(row[0], available[ids[0]][:len(out)], out)
		for j := 1; j < len(ids); j++ {
			gf256.MulAddSlice(row[j], available[ids[j]][:len(out)], out)
		}
		return
	}
	c.shardRange(len(out), func(lo, hi int) {
		gf256.MulSlice(row[0], available[ids[0]][lo:hi], out[lo:hi])
		for j := 1; j < len(ids); j++ {
			gf256.MulAddSlice(row[j], available[ids[j]][lo:hi], out[lo:hi])
		}
	})
}

// DecodeInto reconstructs the block of len(dst) bytes directly into dst.
// Present data chunks are copied straight to their offsets and only the
// missing ones are rebuilt through the (cached) inverted decode matrix,
// so a healthy read is one memcpy and a single-chunk-degraded read is k
// kernel passes over one chunk. dst must not alias any available chunk.
func (c *Codec) DecodeInto(dst []byte, available map[int][]byte) error {
	sc := getScratch()
	defer scratchPool.Put(sc)
	ids := c.pickChunksInto(sc.ids, available)
	if len(ids) < c.k {
		return fmt.Errorf("%w: have %d, need %d", ErrNotEnoughChunks, len(ids), c.k)
	}
	size := len(available[ids[0]])
	for _, id := range ids {
		if len(available[id]) != size {
			return fmt.Errorf("%w: chunk %d has %d bytes, want %d", ErrChunkSizeMismatch, id, len(available[id]), size)
		}
	}
	if len(dst) > c.k*size {
		return fmt.Errorf("%w: %d-byte chunks join to %d bytes, block needs %d", ErrChunkSizeMismatch, size, c.k*size, len(dst))
	}

	missing := sc.missing
	for i := 0; i < c.k; i++ {
		lo := i * size
		if lo >= len(dst) {
			break
		}
		hi := lo + size
		if hi > len(dst) {
			hi = len(dst)
		}
		if chunk, ok := available[i]; ok && chunk != nil {
			copy(dst[lo:hi], chunk)
		} else {
			missing = append(missing, i)
		}
	}

	if len(missing) > 0 {
		dec, err := c.decodeMatrix(ids)
		if err != nil {
			return err
		}
		for _, i := range missing {
			lo := i * size
			hi := lo + size
			if hi > len(dst) {
				hi = len(dst)
			}
			c.mulLine(dec.Row(i), ids, available, dst[lo:hi])
		}
	}
	c.metrics.decoded(len(dst))
	return nil
}

// ReconstructChunk recomputes the single chunk with the given id from any k
// available chunks, as done by the repair service after a site failure. The
// target row is composed against the inverted decode matrix, so rebuilding
// one chunk costs k kernel passes regardless of which chunks survive.
func (c *Codec) ReconstructChunk(available map[int][]byte, id int) ([]byte, error) {
	if id < 0 || id >= c.k+c.r {
		return nil, fmt.Errorf("%w: chunk id %d out of range [0,%d)", ErrInvalidParams, id, c.k+c.r)
	}
	if chunk, ok := available[id]; ok && chunk != nil {
		out := make([]byte, len(chunk))
		copy(out, chunk)
		return out, nil
	}
	sc := getScratch()
	defer scratchPool.Put(sc)
	ids := c.pickChunksInto(sc.ids, available)
	if len(ids) < c.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughChunks, len(ids), c.k)
	}
	size := len(available[ids[0]])
	for _, cid := range ids {
		if len(available[cid]) != size {
			return nil, fmt.Errorf("%w: chunk %d has %d bytes, want %d", ErrChunkSizeMismatch, cid, len(available[cid]), size)
		}
	}
	dec, err := c.decodeMatrix(ids)
	if err != nil {
		return nil, err
	}

	// vec[j] is the coefficient of available chunk ids[j] in the target
	// chunk: row id of the generator composed with the decode matrix.
	// Data rows of the systematic generator are unit vectors, so for
	// id < k the composition collapses to dec's row id.
	var vec []byte
	if id < c.k {
		vec = dec.Row(id)
	} else {
		vec = make([]byte, c.k)
		enc := c.encode.Row(id)
		for j := 0; j < c.k; j++ {
			var v byte
			for t := 0; t < c.k; t++ {
				v ^= gf256.Mul(enc[t], dec.Row(t)[j])
			}
			vec[j] = v
		}
	}

	out := make([]byte, size)
	c.mulLine(vec, ids, available, out)
	return out, nil
}

// decodeMatrix returns the inverse of the generator rows selected by
// ids, memoized by the id bitmask. ids must hold exactly k in-range,
// strictly ascending chunk ids.
func (c *Codec) decodeMatrix(ids []int) (*matrix.Matrix, error) {
	var key uint64
	cacheable := c.k+c.r <= 64
	if cacheable {
		for _, id := range ids {
			key |= 1 << uint(id)
		}
		c.decMu.RLock()
		dec := c.decCache[key]
		c.decMu.RUnlock()
		if dec != nil {
			return dec, nil
		}
	}
	sub, err := c.encode.SelectRows(ids)
	if err != nil {
		return nil, fmt.Errorf("select generator rows: %w", err)
	}
	dec, err := sub.Invert()
	if err != nil {
		// Cannot happen for a correct MDS construction; surface it
		// rather than panic so a corrupted codec fails loudly upstream.
		return nil, fmt.Errorf("invert decode matrix: %w", err)
	}
	if cacheable {
		c.decMu.Lock()
		if c.decCache == nil {
			c.decCache = make(map[uint64]*matrix.Matrix)
		}
		if len(c.decCache) >= maxDecCacheEntries {
			clear(c.decCache)
		}
		c.decCache[key] = dec
		c.decMu.Unlock()
	}
	return dec, nil
}

// maxDecCacheEntries bounds the decode-matrix cache; C(k+r, k) can be
// astronomically larger than the handful of failure patterns a real
// deployment cycles through, so the cache just resets if it fills.
const maxDecCacheEntries = 1024

// pickChunksInto appends up to k available chunk ids to ids in ascending
// order, preferring data chunks (lower ids) to minimize decode work. The
// caller provides the backing slice so the hot path stays allocation-free.
func (c *Codec) pickChunksInto(ids []int, available map[int][]byte) []int {
	for id := 0; id < c.k+c.r && len(ids) < c.k; id++ {
		if chunk, ok := available[id]; ok && chunk != nil {
			ids = append(ids, id)
		}
	}
	return ids
}
