package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCodecParamValidation(t *testing.T) {
	cases := []struct {
		k, r   int
		wantOK bool
	}{
		{2, 1, true},
		{2, 2, true},
		{10, 4, true},
		{1, 1, false},
		{0, 2, false},
		{2, 0, false},
		{200, 100, false}, // k+r > 256
	}
	for _, tc := range cases {
		_, err := NewCodec(tc.k, tc.r)
		if ok := err == nil; ok != tc.wantOK {
			t.Errorf("NewCodec(%d, %d) err = %v, wantOK=%v", tc.k, tc.r, err, tc.wantOK)
		}
		if err != nil && !errors.Is(err, ErrInvalidParams) {
			t.Errorf("NewCodec(%d, %d) err = %v, want ErrInvalidParams", tc.k, tc.r, err)
		}
	}
}

func TestEncodeIsSystematic(t *testing.T) {
	c := mustCodec(t, 4, 2)
	data := seqData(1000)
	chunks, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 6 {
		t.Fatalf("got %d chunks, want 6", len(chunks))
	}
	split := c.Split(data)
	for i := 0; i < 4; i++ {
		if !bytes.Equal(chunks[i], split[i]) {
			t.Fatalf("data chunk %d not systematic", i)
		}
	}
}

func TestDecodeAllData(t *testing.T) {
	c := mustCodec(t, 3, 2)
	data := seqData(301) // not divisible by k, exercises padding
	chunks, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	avail := map[int][]byte{0: chunks[0], 1: chunks[1], 2: chunks[2]}
	got, err := c.Decode(avail, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("all-data decode mismatch")
	}
}

func TestDecodeEveryErasurePattern(t *testing.T) {
	// RS(2,2): every 2-subset of the 4 chunks must reconstruct.
	c := mustCodec(t, 2, 2)
	data := seqData(257)
	chunks, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			avail := map[int][]byte{a: chunks[a], b: chunks[b]}
			got, err := c.Decode(avail, len(data))
			if err != nil {
				t.Fatalf("decode from {%d,%d}: %v", a, b, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("decode from {%d,%d} mismatch", a, b)
			}
		}
	}
}

func TestDecodeInsufficientChunks(t *testing.T) {
	c := mustCodec(t, 3, 1)
	data := seqData(90)
	chunks, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	avail := map[int][]byte{0: chunks[0], 2: chunks[2]}
	if _, err := c.Decode(avail, len(data)); !errors.Is(err, ErrNotEnoughChunks) {
		t.Fatalf("err = %v, want ErrNotEnoughChunks", err)
	}
}

func TestDecodeChunkSizeMismatch(t *testing.T) {
	c := mustCodec(t, 2, 1)
	data := seqData(100)
	chunks, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	avail := map[int][]byte{0: chunks[0], 1: chunks[1][:10]}
	if _, err := c.Decode(avail, len(data)); !errors.Is(err, ErrChunkSizeMismatch) {
		t.Fatalf("err = %v, want ErrChunkSizeMismatch", err)
	}
}

func TestDecodeNilEntriesIgnored(t *testing.T) {
	c := mustCodec(t, 2, 2)
	data := seqData(64)
	chunks, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	avail := map[int][]byte{0: nil, 1: chunks[1], 3: chunks[3]}
	got, err := c.Decode(avail, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode with nil entry mismatch")
	}
}

func TestEncodeEmptyBlock(t *testing.T) {
	c := mustCodec(t, 2, 1)
	chunks, err := c.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(map[int][]byte{1: chunks[1], 2: chunks[2]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty block decoded to %d bytes", len(got))
	}
}

func TestReconstructChunk(t *testing.T) {
	c := mustCodec(t, 3, 2)
	data := seqData(999)
	chunks, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct each chunk id from the other four.
	for id := 0; id < 5; id++ {
		avail := make(map[int][]byte)
		for j, ch := range chunks {
			if j != id {
				avail[j] = ch
			}
		}
		got, err := c.ReconstructChunk(avail, id)
		if err != nil {
			t.Fatalf("reconstruct %d: %v", id, err)
		}
		if !bytes.Equal(got, chunks[id]) {
			t.Fatalf("reconstructed chunk %d mismatch", id)
		}
	}
}

func TestReconstructChunkAlreadyPresent(t *testing.T) {
	c := mustCodec(t, 2, 1)
	data := seqData(50)
	chunks, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	avail := map[int][]byte{0: chunks[0], 1: chunks[1], 2: chunks[2]}
	got, err := c.ReconstructChunk(avail, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, chunks[1]) {
		t.Fatal("present chunk round-trip mismatch")
	}
	// Returned chunk must not alias the stored one.
	got[0] ^= 0xFF
	if got[0] == chunks[1][0] {
		t.Fatal("ReconstructChunk aliased input")
	}
}

func TestReconstructChunkBadID(t *testing.T) {
	c := mustCodec(t, 2, 1)
	if _, err := c.ReconstructChunk(nil, 3); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("err = %v, want ErrInvalidParams", err)
	}
	if _, err := c.ReconstructChunk(nil, -1); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("err = %v, want ErrInvalidParams", err)
	}
}

func TestChunkSize(t *testing.T) {
	c := mustCodec(t, 4, 2)
	cases := []struct {
		blockLen, want int
	}{
		// Empty blocks still store one zero byte per chunk, matching
		// Split's padding, so metadata and stored bytes agree.
		{0, 1},
		{1, 1},
		{4, 1},
		{5, 2},
		{100, 25},
		{101, 26},
	}
	for _, tc := range cases {
		if got := c.ChunkSize(tc.blockLen); got != tc.want {
			t.Errorf("ChunkSize(%d) = %d, want %d", tc.blockLen, got, tc.want)
		}
	}
}

func TestStorageOverhead(t *testing.T) {
	c := mustCodec(t, 2, 2)
	if got := c.StorageOverhead(); got != 2.0 {
		t.Fatalf("RS(2,2) overhead = %v, want 2.0", got)
	}
	c2 := mustCodec(t, 4, 2)
	if got := c2.StorageOverhead(); got != 1.5 {
		t.Fatalf("RS(4,2) overhead = %v, want 1.5", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	check := func(kRaw, rRaw uint8, blockLenRaw uint16) bool {
		k := int(kRaw%6) + 2  // [2, 7]
		r := int(rRaw%4) + 1  // [1, 4]
		blockLen := int(blockLenRaw % 4096)
		c, err := NewCodec(k, r)
		if err != nil {
			return false
		}
		data := make([]byte, blockLen)
		rng.Read(data)
		chunks, err := c.Encode(data)
		if err != nil {
			return false
		}
		// Random k-subset of the k+r chunks.
		perm := rng.Perm(k + r)
		avail := make(map[int][]byte, k)
		for _, id := range perm[:k] {
			avail[id] = chunks[id]
		}
		got, err := c.Decode(avail, blockLen)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestJoinValidation(t *testing.T) {
	c := mustCodec(t, 2, 1)
	if _, err := c.Join([][]byte{{1}}, 2); !errors.Is(err, ErrNotEnoughChunks) {
		t.Fatalf("short join err = %v", err)
	}
	if _, err := c.Join([][]byte{{1}, {2, 3}}, 2); !errors.Is(err, ErrChunkSizeMismatch) {
		t.Fatalf("ragged join err = %v", err)
	}
	if _, err := c.Join([][]byte{{1}, {2}}, 5); !errors.Is(err, ErrChunkSizeMismatch) {
		t.Fatalf("oversize blockLen err = %v", err)
	}
}

func mustCodec(t *testing.T, k, r int) *Codec {
	t.Helper()
	c, err := NewCodec(k, r)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func seqData(n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i * 31)
	}
	return d
}

func BenchmarkEncodeRS22_100KB(b *testing.B) {
	benchEncode(b, 2, 2, 100*1024)
}

func BenchmarkEncodeRS42_1MB(b *testing.B) {
	benchEncode(b, 4, 2, 1024*1024)
}

func BenchmarkDecodeRS22_100KB_Degraded(b *testing.B) {
	c, err := NewCodec(2, 2)
	if err != nil {
		b.Fatal(err)
	}
	data := seqData(100 * 1024)
	chunks, err := c.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	avail := map[int][]byte{1: chunks[1], 3: chunks[3]}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(avail, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEncode(b *testing.B, k, r, size int) {
	c, err := NewCodec(k, r)
	if err != nil {
		b.Fatal(err)
	}
	data := seqData(size)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeFromParityOnly(t *testing.T) {
	// RS(2,2): reconstruct using only the two parity chunks.
	c := mustCodec(t, 2, 2)
	data := seqData(333)
	chunks, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(map[int][]byte{2: chunks[2], 3: chunks[3]}, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("parity-only decode mismatch")
	}
}

func TestReconstructChunkProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	check := func(kRaw, rRaw uint8) bool {
		k := int(kRaw%4) + 2
		r := int(rRaw%3) + 1
		c, err := NewCodec(k, r)
		if err != nil {
			return false
		}
		data := make([]byte, 257)
		rng.Read(data)
		chunks, err := c.Encode(data)
		if err != nil {
			return false
		}
		// Drop a random chunk, reconstruct it from a random k-subset of
		// the rest.
		lost := rng.Intn(k + r)
		avail := make(map[int][]byte)
		perm := rng.Perm(k + r)
		for _, id := range perm {
			if id != lost && len(avail) < k {
				avail[id] = chunks[id]
			}
		}
		got, err := c.ReconstructChunk(avail, lost)
		if err != nil {
			return false
		}
		return bytes.Equal(got, chunks[lost])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
