package erasure

import (
	"bytes"
	"testing"
)

// buildStriped encodes data into striped chunks the way the streaming
// put path does: stripe by stripe, each chunk receiving unit bytes per
// stripe at offset t*unit.
func buildStriped(t *testing.T, c *Codec, data []byte, unit int64) [][]byte {
	t.Helper()
	k := c.K()
	chunkSize := StripedChunkSize(k, int64(len(data)), unit)
	chunks := make([][]byte, c.TotalChunks())
	for i := range chunks {
		chunks[i] = make([]byte, chunkSize)
	}
	stripeBytes := int64(k) * unit
	for t0, off := int64(0), int64(0); off < int64(len(data)) || t0 == 0; t0, off = t0+1, off+stripeBytes {
		stripe := make([]byte, stripeBytes)
		if off < int64(len(data)) {
			copy(stripe, data[off:])
		}
		enc, err := c.Encode(stripe)
		if err != nil {
			t.Fatalf("encode stripe %d: %v", t0, err)
		}
		for i := range chunks {
			copy(chunks[i][t0*unit:(t0+1)*unit], enc[i])
		}
	}
	return chunks
}

func TestLayoutStripedRoundTrip(t *testing.T) {
	c, err := NewCodec(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const unit = 64
	data := make([]byte, 1000) // not a stripe multiple: exercises the padded tail
	for i := range data {
		data[i] = byte(i * 31)
	}
	chunks := buildStriped(t, c, data, unit)
	lay := Layout{K: 2, BlockSize: int64(len(data)), ChunkSize: int64(len(chunks[0])), StripeUnit: unit}
	if err := lay.Validate(); err != nil {
		t.Fatal(err)
	}

	cases := []struct{ off, n int64 }{
		{0, int64(len(data))}, // whole block
		{0, 1},
		{0, 0},
		{999, 1},   // last byte (inside the padded tail stripe)
		{100, 300}, // stripe-crossing interior range
		{64, 64},   // exactly one chunk segment
		{0, 128},   // exactly one stripe
		{500, 0},
	}
	for _, tc := range cases {
		lo, hi, err := lay.Window(tc.off, tc.n)
		if err != nil {
			t.Fatalf("Window(%d,%d): %v", tc.off, tc.n, err)
		}
		got := rangeDecode(t, c, lay, chunks, lo, hi, tc.off, tc.n)
		if !bytes.Equal(got, data[tc.off:tc.off+tc.n]) {
			t.Errorf("range [%d,%d): got %d bytes, mismatch", tc.off, tc.off+tc.n, len(got))
		}
	}
}

// rangeDecode fetches only the window [lo,hi) of each chunk, decodes it
// with DecodeInto using k arbitrary chunks (here: one data chunk lost),
// and gathers the requested bytes — the exact shape of core.GetRange.
func rangeDecode(t *testing.T, c *Codec, lay Layout, chunks [][]byte, lo, hi, off, n int64) []byte {
	t.Helper()
	if n == 0 {
		return nil
	}
	segs := make(map[int][]byte, c.K())
	// Drop data chunk 0 to force a real decode through the parity.
	for id := 1; len(segs) < c.K(); id++ {
		segs[id] = chunks[id][lo:hi]
	}
	win := make([]byte, int64(c.K())*(hi-lo))
	if err := c.DecodeInto(win, segs); err != nil {
		t.Fatalf("DecodeInto window [%d,%d): %v", lo, hi, err)
	}
	dst := make([]byte, n)
	if err := lay.Gather(dst, win, lo, off); err != nil {
		t.Fatalf("Gather: %v", err)
	}
	return dst
}

func TestLayoutContiguousWindow(t *testing.T) {
	lay := Layout{K: 4, BlockSize: 400, ChunkSize: 100}
	// Range inside one data chunk: a tight window.
	lo, hi, err := lay.Window(110, 50)
	if err != nil || lo != 10 || hi != 60 {
		t.Fatalf("single-chunk window: got [%d,%d) err=%v", lo, hi, err)
	}
	// Range crossing chunks: degrades to whole chunks.
	lo, hi, err = lay.Window(90, 20)
	if err != nil || lo != 0 || hi != 100 {
		t.Fatalf("crossing window: got [%d,%d) err=%v", lo, hi, err)
	}
	if s := lay.WindowStripes(lo, hi); s != 1 {
		t.Fatalf("contiguous stripes = %d, want 1", s)
	}
}

func TestLayoutContiguousGather(t *testing.T) {
	c, err := NewCodec(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 301)
	for i := range data {
		data[i] = byte(i ^ 0x5a)
	}
	chunks, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	lay := Layout{K: 3, BlockSize: int64(len(data)), ChunkSize: int64(len(chunks[0]))}
	for _, tc := range []struct{ off, n int64 }{{0, 301}, {5, 90}, {100, 150}, {250, 51}, {300, 1}} {
		lo, hi, err := lay.Window(tc.off, tc.n)
		if err != nil {
			t.Fatalf("Window(%d,%d): %v", tc.off, tc.n, err)
		}
		got := rangeDecode(t, c, lay, chunks, lo, hi, tc.off, tc.n)
		if !bytes.Equal(got, data[tc.off:tc.off+tc.n]) {
			t.Errorf("range [%d,%d) mismatch", tc.off, tc.off+tc.n)
		}
	}
}

// TestLayoutEmptyBlock pins the ChunkSize(0)=1 rule's interaction with
// range addressing: an empty block stores one byte per chunk (or one
// stripe when striped), every zero-length range succeeds, and every
// non-empty range is out of bounds.
func TestLayoutEmptyBlock(t *testing.T) {
	for _, lay := range []Layout{
		{K: 2, BlockSize: 0, ChunkSize: 1},                  // contiguous: ChunkSize(0) = 1
		{K: 2, BlockSize: 0, ChunkSize: 64, StripeUnit: 64}, // striped: one zero stripe
	} {
		if err := lay.Validate(); err != nil {
			t.Fatalf("%+v: %v", lay, err)
		}
		lo, hi, err := lay.Window(0, 0)
		if err != nil || lo != 0 || hi != 0 {
			t.Fatalf("%+v: empty window got [%d,%d) err=%v", lay, lo, hi, err)
		}
		if _, _, err := lay.Window(0, 1); err == nil {
			t.Fatalf("%+v: read past empty block succeeded", lay)
		}
		if _, _, err := lay.Window(1, 0); err == nil {
			t.Fatalf("%+v: offset past empty block succeeded", lay)
		}
	}
}

func TestLayoutValidate(t *testing.T) {
	bad := []Layout{
		{K: 0, BlockSize: 1, ChunkSize: 1},
		{K: 2, BlockSize: -1, ChunkSize: 1},
		{K: 2, BlockSize: 1, ChunkSize: 0},
		{K: 2, BlockSize: 10, ChunkSize: 128, StripeUnit: 100}, // chunk not a unit multiple
		{K: 2, BlockSize: 300, ChunkSize: 100},                 // block exceeds k*chunk
		{K: 2, BlockSize: 1, ChunkSize: 1, StripeUnit: -1},
	}
	for _, lay := range bad {
		if err := lay.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", lay)
		}
	}
}

// FuzzLayoutWindow cross-checks the range→window→gather arithmetic on
// both layouts against a reference copy of the original data: whatever
// (off, n) the fuzzer picks, the window must cover the range and Gather
// must reproduce data[off:off+n] from the per-chunk windows, including
// tail-stripe padding and the empty block.
func FuzzLayoutWindow(f *testing.F) {
	f.Add(int64(0), int64(0), uint16(0), uint8(2), true)
	f.Add(int64(0), int64(1024), uint16(1024), uint8(2), true)
	f.Add(int64(999), int64(1), uint16(1000), uint8(3), false)
	f.Add(int64(64), int64(128), uint16(333), uint8(4), true)
	f.Add(int64(7), int64(93), uint16(100), uint8(2), false)
	f.Fuzz(func(t *testing.T, off, n int64, size uint16, kRaw uint8, striped bool) {
		k := 2 + int(kRaw%3) // k in [2,4]
		const unit = 64
		data := make([]byte, int(size))
		for i := range data {
			data[i] = byte(i*7 + 3)
		}
		var lay Layout
		if striped {
			lay = Layout{K: k, BlockSize: int64(len(data)), ChunkSize: StripedChunkSize(k, int64(len(data)), unit), StripeUnit: unit}
		} else {
			cs := int64((len(data) + k - 1) / k)
			if cs == 0 {
				cs = 1 // the ChunkSize(0)=1 rule
			}
			lay = Layout{K: k, BlockSize: int64(len(data)), ChunkSize: cs}
		}
		if err := lay.Validate(); err != nil {
			t.Fatalf("Validate(%+v): %v", lay, err)
		}

		lo, hi, err := lay.Window(off, n)
		if off < 0 || n < 0 || off+n > lay.BlockSize || off+n < 0 {
			if err == nil {
				t.Fatalf("Window(%d,%d) of %d bytes: want out-of-bounds error", off, n, lay.BlockSize)
			}
			return
		}
		if err != nil {
			t.Fatalf("Window(%d,%d): %v", off, n, err)
		}
		if lo < 0 || hi > lay.ChunkSize || lo > hi {
			t.Fatalf("Window(%d,%d) = [%d,%d) outside chunk of %d bytes", off, n, lo, hi, lay.ChunkSize)
		}
		if n == 0 {
			if lo != 0 || hi != 0 {
				t.Fatalf("empty range: window [%d,%d), want [0,0)", lo, hi)
			}
			return
		}
		if s := lay.WindowStripes(lo, hi); s < 1 || s > lay.Stripes() {
			t.Fatalf("WindowStripes = %d of %d total", s, lay.Stripes())
		}

		// Build the data-chunk windows directly from the layout
		// definition (no codec: the fuzz target pins the arithmetic,
		// the round-trip tests pin the codec interaction).
		w := hi - lo
		win := make([]byte, int64(k)*w)
		for c := 0; c < k; c++ {
			seg := win[int64(c)*w : (int64(c)+1)*w]
			for i := int64(0); i < w; i++ {
				var blockOff int64
				if lay.StripeUnit > 0 {
					q := lo + i
					blockOff = (q/unit)*int64(k)*unit + int64(c)*unit + q%unit
				} else {
					blockOff = int64(c)*lay.ChunkSize + lo + i
				}
				if blockOff < int64(len(data)) {
					seg[i] = data[blockOff]
				}
			}
		}
		dst := make([]byte, n)
		if err := lay.Gather(dst, win, lo, off); err != nil {
			t.Fatalf("Gather: %v", err)
		}
		if !bytes.Equal(dst, data[off:off+n]) {
			t.Fatalf("range [%d,%d): gathered bytes differ from source", off, off+n)
		}
	})
}
