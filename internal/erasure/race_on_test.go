//go:build race

package erasure

const raceEnabled = true
