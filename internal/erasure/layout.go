package erasure

import (
	"errors"
	"fmt"
)

// ErrRangeOutOfBounds reports a byte range outside the block.
var ErrRangeOutOfBounds = errors.New("erasure: range out of bounds")

// Layout describes how one block's bytes map onto its k data chunks, so
// range reads can fetch only the chunk windows a byte range touches.
//
// Two layouts exist:
//
//   - Contiguous (StripeUnit == 0, the Split/Join layout): chunk c holds
//     block bytes [c*ChunkSize, (c+1)*ChunkSize). A range confined to one
//     data chunk needs only a small window; a range crossing chunks
//     degrades to whole-chunk windows, because a degraded decode of any
//     window must read the same window of k chunks.
//
//   - Striped (StripeUnit > 0, the streaming layout): the block is cut
//     into stripes of k*StripeUnit bytes; stripe t contributes the
//     StripeUnit bytes at offset t*StripeUnit of every chunk. Any byte
//     range then maps to one contiguous window, identical across chunks,
//     proportional to the range length rather than the block size.
//
// Because RS parity is computed byte-position-wise across chunks
// (parity[p][x] = Σ_c g[p][c]·chunk[c][x]), the bytes [lo, hi) of all
// k+r chunks form a valid codeword for every window, in both layouts:
// fetching a window of any k chunks suffices to reconstruct that window
// of all chunks, which is what makes stripe-range reads possible without
// whole-chunk repair reads.
type Layout struct {
	// K is the number of data chunks.
	K int
	// BlockSize is the original block length in bytes.
	BlockSize int64
	// ChunkSize is the stored per-chunk length in bytes.
	ChunkSize int64
	// StripeUnit selects the layout; see the type comment.
	StripeUnit int64
}

// Validate checks the layout's internal consistency.
func (l Layout) Validate() error {
	if l.K < 1 || l.BlockSize < 0 || l.ChunkSize < 1 {
		return fmt.Errorf("erasure: invalid layout %+v", l)
	}
	if l.StripeUnit < 0 {
		return fmt.Errorf("erasure: negative stripe unit %d", l.StripeUnit)
	}
	if l.StripeUnit > 0 && l.ChunkSize%l.StripeUnit != 0 {
		return fmt.Errorf("erasure: chunk size %d not a multiple of stripe unit %d", l.ChunkSize, l.StripeUnit)
	}
	if l.BlockSize > int64(l.K)*l.ChunkSize {
		return fmt.Errorf("erasure: block size %d exceeds %d x %d-byte chunks", l.BlockSize, l.K, l.ChunkSize)
	}
	return nil
}

// Stripes returns how many stripes the block stores: ChunkSize/StripeUnit
// for striped blocks, 1 for contiguous blocks (the whole chunk is one
// addressable window).
func (l Layout) Stripes() int64 {
	if l.StripeUnit > 0 {
		return l.ChunkSize / l.StripeUnit
	}
	return 1
}

// Window maps the byte range [off, off+n) of the block to the per-chunk
// byte window [lo, hi) that must be fetched from each of the k chunks
// used by the decode. The same window applies to every chunk (data or
// parity); decoding the k windows reconstructs the window of every data
// chunk, from which Gather extracts the requested bytes.
//
// n == 0 yields the empty window (0, 0). The range must lie inside the
// block; callers clamp against BlockSize first.
func (l Layout) Window(off, n int64) (lo, hi int64, err error) {
	if off < 0 || n < 0 || off+n > l.BlockSize {
		return 0, 0, fmt.Errorf("%w: [%d, %d) of %d-byte block", ErrRangeOutOfBounds, off, off+n, l.BlockSize)
	}
	if n == 0 {
		return 0, 0, nil
	}
	if l.StripeUnit > 0 {
		w := int64(l.K) * l.StripeUnit
		lo = off / w * l.StripeUnit
		hi = (off + n + w - 1) / w * l.StripeUnit
		if hi > l.ChunkSize {
			hi = l.ChunkSize
		}
		return lo, hi, nil
	}
	first := off / l.ChunkSize
	last := (off + n - 1) / l.ChunkSize
	if first == last {
		lo = off - first*l.ChunkSize
		return lo, lo + n, nil
	}
	// The range crosses data chunks: a degraded decode needs the same
	// window of k chunks, so the union degrades to whole chunks.
	return 0, l.ChunkSize, nil
}

// WindowStripes returns how many stripes the window [lo, hi) spans: the
// quantity range reads decode, reported by range_stripes_decoded_total.
// A contiguous block counts as one stripe per non-empty window.
func (l Layout) WindowStripes(lo, hi int64) int64 {
	if hi <= lo {
		return 0
	}
	if l.StripeUnit > 0 {
		return (hi - lo + l.StripeUnit - 1) / l.StripeUnit
	}
	return 1
}

// Gather copies the block bytes [off, off+len(dst)) out of win, the
// decoded window: the concatenation, for each data chunk c in [0, K), of
// that chunk's bytes [lo, lo+w) where w = len(win)/K. win is exactly
// what DecodeInto produces when handed k chunk windows of w bytes each.
func (l Layout) Gather(dst []byte, win []byte, lo, off int64) error {
	if l.K == 0 || len(win)%l.K != 0 {
		return fmt.Errorf("erasure: window of %d bytes not divisible by k=%d", len(win), l.K)
	}
	w := int64(len(win) / l.K)
	n := int64(len(dst))
	if n == 0 {
		return nil
	}
	if off < 0 || off+n > l.BlockSize {
		return fmt.Errorf("%w: gather [%d, %d) of %d-byte block", ErrRangeOutOfBounds, off, off+n, l.BlockSize)
	}
	if l.StripeUnit == 0 {
		// Chunk c's window covers block bytes [c*ChunkSize+lo, ...+w).
		for c := 0; c < l.K; c++ {
			blockLo := int64(c)*l.ChunkSize + lo
			if err := gatherSeg(dst, win[int64(c)*w:(int64(c)+1)*w], blockLo, off); err != nil {
				return err
			}
		}
		return nil
	}
	// Stripe t's segment for chunk c covers block bytes
	// [t*K*unit + c*unit, ...+unit) and sits at window offset
	// c*w + (t*unit - lo).
	unit := l.StripeUnit
	for t := lo / unit; t*unit < lo+w; t++ {
		for c := 0; c < l.K; c++ {
			blockLo := t*int64(l.K)*unit + int64(c)*unit
			winOff := int64(c)*w + (t*unit - lo)
			if err := gatherSeg(dst, win[winOff:winOff+unit], blockLo, off); err != nil {
				return err
			}
		}
	}
	return nil
}

// StripedChunkSize returns the per-chunk stored size of a striped block
// of blockSize bytes: ceil(blockSize / (k*unit)) stripes of unit bytes
// per chunk, tail stripe zero-padded, and at least one stripe even for
// an empty block (mirroring ChunkSize's one-byte minimum: the size
// registered in metadata always equals the bytes actually stored).
func StripedChunkSize(k int, blockSize, unit int64) int64 {
	w := int64(k) * unit
	stripes := (blockSize + w - 1) / w
	if stripes < 1 {
		stripes = 1
	}
	return stripes * unit
}

// gatherSeg copies the intersection of seg — which holds block bytes
// [blockLo, blockLo+len(seg)) — with the destination range
// [off, off+len(dst)) into dst.
func gatherSeg(dst, seg []byte, blockLo, off int64) error {
	segHi := blockLo + int64(len(seg))
	dstHi := off + int64(len(dst))
	from := max(blockLo, off)
	to := min(segHi, dstHi)
	if from >= to {
		return nil
	}
	copy(dst[from-off:to-off], seg[from-blockLo:to-blockLo])
	return nil
}
