package main

import (
	"net"
	"testing"
	"time"

	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/rpc"
	"ecstore/internal/transport"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bogus flag accepted")
	}
	if err := run([]string{"-sites", "1"}); err == nil {
		t.Fatal("single-site cluster accepted")
	}
	if err := run([]string{"-addr", "999.999.999.999:1"}); err == nil {
		t.Fatal("invalid address accepted")
	}
}

func TestRunServesMetadataRPC(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()

	errCh := make(chan error, 1)
	go func() { errCh <- run([]string{"-addr", addr, "-sites", "3"}) }()

	tcp := &transport.TCP{DialTimeout: time.Second}
	var conn net.Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err = tcp.Dial(addr)
		if err == nil {
			break
		}
		select {
		case e := <-errCh:
			t.Fatalf("server exited early: %v", e)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	client := metadata.NewClient(rpc.NewClient(conn))
	if got := client.Sites(); len(got) != 3 {
		t.Fatalf("Sites = %v", got)
	}
	err = client.Register(&model.BlockMeta{
		ID: "b", Scheme: model.SchemeErasure, K: 2, R: 1,
		Size: 10, ChunkSize: 5, Sites: []model.SiteID{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	metas, err := client.Lookup([]model.BlockID{"b"})
	if err != nil || metas["b"].K != 2 {
		t.Fatalf("lookup over TCP: %v %+v", err, metas["b"])
	}
}

func TestOpenCatalogPersistence(t *testing.T) {
	dir := t.TempDir()
	snap := dir + "/meta.snap"

	// First boot: fresh catalog.
	c1, err := openCatalog(4, snap, "", metadata.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Len() != 0 {
		t.Fatalf("fresh catalog has %d blocks", c1.Len())
	}
	err = c1.Register(&model.BlockMeta{
		ID: "persisted", Scheme: model.SchemeErasure, K: 2, R: 1,
		Size: 10, ChunkSize: 5, Sites: []model.SiteID{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.SaveFile(snap); err != nil {
		t.Fatal(err)
	}

	// Second boot with a larger site count: block survives, new sites
	// are registered.
	c2, err := openCatalog(6, snap, "", metadata.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.BlockMeta("persisted"); !ok {
		t.Fatal("block lost across restart")
	}
	if got := len(c2.Sites()); got != 6 {
		t.Fatalf("sites after growth = %d", got)
	}

	// No snapshot configured: always fresh.
	c3, err := openCatalog(2, "", "", metadata.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c3.Len() != 0 {
		t.Fatal("in-memory catalog not fresh")
	}
}

func TestOpenCatalogWAL(t *testing.T) {
	dir := t.TempDir()

	c1, err := openCatalog(4, "", dir, metadata.WALOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	err = c1.Register(&model.BlockMeta{
		ID: "walblock", Scheme: model.SchemeErasure, K: 2, R: 1,
		Size: 10, ChunkSize: 5, Sites: []model.SiteID{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := openCatalog(6, "", dir, metadata.WALOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c2.Close() }()
	if _, ok := c2.BlockMeta("walblock"); !ok {
		t.Fatal("block lost across WAL restart")
	}
	if got := len(c2.Sites()); got != 6 {
		t.Fatalf("sites after growth = %d", got)
	}
}

func TestRunRejectsConflictingPersistence(t *testing.T) {
	if err := run([]string{"-snapshot", "/tmp/x.snap", "-wal-dir", "/tmp/wal"}); err == nil {
		t.Fatal("conflicting -snapshot and -wal-dir accepted")
	}
}
