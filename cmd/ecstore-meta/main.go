// Command ecstore-meta runs the EC-Store metadata service (the control
// plane's block catalog) over TCP, with optional snapshot persistence.
//
//	ecstore-meta -addr 127.0.0.1:7100 -sites 4 -snapshot /var/lib/ecstore/meta.snap
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/rpc"
	"ecstore/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ecstore-meta", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7100", "listen address")
	numSites := fs.Int("sites", 4, "number of storage sites (ids 1..n)")
	snapshot := fs.String("snapshot", "", "snapshot file for catalog persistence (empty = in-memory only)")
	snapshotEvery := fs.Duration("snapshot-interval", time.Minute, "periodic snapshot interval")
	metricsAddr := fs.String("metrics-addr", "", "HTTP address for /metrics (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *numSites < 2 {
		return fmt.Errorf("need at least 2 sites, got %d", *numSites)
	}

	catalog, err := openCatalog(*numSites, *snapshot)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	catalog.EnableMetrics(reg)

	tcp := &transport.TCP{Metrics: transport.NewMetrics(reg)}
	l, err := tcp.Listen(*addr)
	if err != nil {
		return err
	}
	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", ml.Addr())
		//lint:ignore goleak metrics endpoint serves for the process lifetime by design
		go func() { _ = obs.Serve(ml, reg, nil) }()
	}
	fmt.Printf("ecstore-meta serving on %s (%d sites, %d blocks loaded)\n",
		l.Addr(), *numSites, catalog.Len())
	srv := rpc.NewServer(metadata.NewServer(catalog))
	srv.SetMetrics(rpc.NewMetrics(reg, "rpc_server"))

	if *snapshot == "" {
		return srv.Serve(l)
	}

	// With persistence: snapshot periodically and on SIGINT/SIGTERM.
	serveErr := make(chan error, 1)
	//lint:ignore goleak accept loop; srv.Close on signal makes Serve return into the buffered channel
	go func() { serveErr <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*snapshotEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := catalog.SaveFile(*snapshot); err != nil {
				log.Printf("snapshot: %v", err)
			}
		case <-sig:
			_ = srv.Close()
			<-serveErr
			return catalog.SaveFile(*snapshot)
		case err := <-serveErr:
			if saveErr := catalog.SaveFile(*snapshot); saveErr != nil {
				log.Printf("final snapshot: %v", saveErr)
			}
			return err
		}
	}
}

// openCatalog loads the snapshot if one exists, otherwise starts fresh.
func openCatalog(numSites int, snapshot string) (*metadata.Catalog, error) {
	if snapshot != "" {
		catalog, err := metadata.LoadFile(snapshot)
		switch {
		case err == nil:
			// Snapshot site list wins, but new sites may be added.
			for i := 1; i <= numSites; i++ {
				catalog.AddSite(model.SiteID(i))
			}
			return catalog, nil
		case errors.Is(err, os.ErrNotExist):
			// First boot.
		default:
			return nil, err
		}
	}
	ids := make([]model.SiteID, numSites)
	for i := range ids {
		ids[i] = model.SiteID(i + 1)
	}
	return metadata.NewCatalog(ids), nil
}
