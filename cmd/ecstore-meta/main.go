// Command ecstore-meta runs the EC-Store metadata service (the control
// plane's block catalog) over TCP, with optional persistence: either a
// write-ahead-logged catalog (-wal-dir, crash-safe to the last group
// commit) or legacy periodic snapshots (-snapshot).
//
//	ecstore-meta -addr 127.0.0.1:7100 -sites 4 -wal-dir /var/lib/ecstore/meta
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/rpc"
	"ecstore/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ecstore-meta", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7100", "listen address")
	numSites := fs.Int("sites", 4, "number of storage sites (ids 1..n)")
	snapshot := fs.String("snapshot", "", "legacy snapshot file for catalog persistence (empty = disabled; superseded by -wal-dir)")
	snapshotEvery := fs.Duration("snapshot-interval", time.Minute, "periodic snapshot interval (legacy -snapshot mode)")
	walDir := fs.String("wal-dir", "", "directory for the partitioned write-ahead log (empty = no WAL)")
	walPartitions := fs.Int("wal-partitions", metadata.DefaultPartitions, "catalog partition count (WAL mode; safe to change across restarts)")
	walFsync := fs.Duration("wal-fsync-interval", 0, "group-commit window: 0 fsyncs every operation; >0 batches fsyncs and bounds loss on power failure to the window")
	walCompact := fs.Int64("wal-compact-bytes", 8<<20, "per-partition WAL bytes between snapshot+truncate compactions")
	metricsAddr := fs.String("metrics-addr", "", "HTTP address for /metrics (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *numSites < 2 {
		return fmt.Errorf("need at least 2 sites, got %d", *numSites)
	}
	if *walDir != "" && *snapshot != "" {
		return fmt.Errorf("-wal-dir and -snapshot are mutually exclusive")
	}

	catalog, err := openCatalog(*numSites, *snapshot, *walDir, metadata.WALOptions{
		Partitions:    *walPartitions,
		FsyncInterval: *walFsync,
		CompactBytes:  *walCompact,
	})
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	catalog.EnableMetrics(reg)

	tcp := &transport.TCP{Metrics: transport.NewMetrics(reg)}
	l, err := tcp.Listen(*addr)
	if err != nil {
		return err
	}
	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", ml.Addr())
		//lint:ignore goleak metrics endpoint serves for the process lifetime by design
		go func() { _ = obs.Serve(ml, reg, nil) }()
	}
	fmt.Printf("ecstore-meta serving on %s (%d sites, %d blocks loaded, %d partitions)\n",
		l.Addr(), *numSites, catalog.Len(), catalog.Partitions())
	srv := rpc.NewServer(metadata.NewServer(catalog))
	srv.SetMetrics(rpc.NewMetrics(reg, "rpc_server"))

	if *walDir != "" {
		// WAL mode: every acknowledged mutation is already durable (or
		// within the group-commit window); shutdown just flushes and
		// releases the logs.
		serveErr := make(chan error, 1)
		//lint:ignore goleak accept loop; srv.Close on signal makes Serve return into the buffered channel
		go func() { serveErr <- srv.Serve(l) }()
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		select {
		case <-sig:
			_ = srv.Close()
			<-serveErr
			return catalog.Close()
		case err := <-serveErr:
			if closeErr := catalog.Close(); closeErr != nil {
				log.Printf("wal close: %v", closeErr)
			}
			return err
		}
	}

	if *snapshot == "" {
		return srv.Serve(l)
	}

	// Legacy snapshot persistence: snapshot periodically and on
	// SIGINT/SIGTERM.
	serveErr := make(chan error, 1)
	//lint:ignore goleak accept loop; srv.Close on signal makes Serve return into the buffered channel
	go func() { serveErr <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*snapshotEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := catalog.SaveFile(*snapshot); err != nil {
				log.Printf("snapshot: %v", err)
			}
		case <-sig:
			_ = srv.Close()
			<-serveErr
			return catalog.SaveFile(*snapshot)
		case err := <-serveErr:
			if saveErr := catalog.SaveFile(*snapshot); saveErr != nil {
				log.Printf("final snapshot: %v", saveErr)
			}
			return err
		}
	}
}

// openCatalog opens the WAL-backed catalog when walDir is set, loads the
// legacy snapshot if one exists, and otherwise starts fresh.
func openCatalog(numSites int, snapshot, walDir string, walOpts metadata.WALOptions) (*metadata.Catalog, error) {
	ids := make([]model.SiteID, numSites)
	for i := range ids {
		ids[i] = model.SiteID(i + 1)
	}
	if walDir != "" {
		return metadata.Open(walDir, ids, walOpts)
	}
	if snapshot != "" {
		catalog, err := metadata.LoadFile(snapshot)
		switch {
		case err == nil:
			// Snapshot site list wins, but new sites may be added.
			for i := 1; i <= numSites; i++ {
				if err := catalog.AddSite(model.SiteID(i)); err != nil {
					return nil, err
				}
			}
			return catalog, nil
		case errors.Is(err, os.ErrNotExist):
			// First boot.
		default:
			return nil, err
		}
	}
	return metadata.NewCatalog(ids), nil
}
