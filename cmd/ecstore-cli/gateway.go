package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"ecstore/internal/gateway"
)

// runViaGateway services put/get/del through a gateway's HTTP front:
// the gateway owns the erasure coding, caching and placement, so the
// CLI degenerates to plain HTTP with a tenant header. Commands that
// need the cluster topology (stat, stats) still require direct mode.
func runViaGateway(base, tenant string, rest []string) error {
	base = strings.TrimRight(base, "/")
	client := &http.Client{}
	url := func(key string) string { return base + "/v1/blocks/" + key }

	do := func(req *http.Request) (*http.Response, error) {
		if tenant != "" {
			req.Header.Set(gateway.TenantHeader, tenant)
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode >= 400 {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			_ = resp.Body.Close()
			return nil, fmt.Errorf("gateway: %s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		return resp, nil
	}

	switch rest[0] {
	case "put":
		pfs := flag.NewFlagSet("put", flag.ContinueOnError)
		stream := pfs.Bool("stream", false, "stream the file; \"-\" reads stdin (the gateway streams either way)")
		if err := pfs.Parse(rest[1:]); err != nil {
			return err
		}
		prest := pfs.Args()
		if len(prest) != 2 {
			return errors.New("usage: put [-stream] <key> <file>")
		}
		var src io.Reader
		if *stream && prest[1] == "-" {
			src = os.Stdin
		} else {
			f, err := os.Open(prest[1])
			if err != nil {
				return err
			}
			defer func() { _ = f.Close() }()
			src = f
		}
		req, err := http.NewRequest(http.MethodPut, url(prest[0]), src)
		if err != nil {
			return err
		}
		resp, err := do(req)
		if err != nil {
			return err
		}
		_ = resp.Body.Close()
		fmt.Printf("stored %s via gateway\n", prest[0])
		return nil

	case "get":
		gfs := flag.NewFlagSet("get", flag.ContinueOnError)
		rng := gfs.String("range", "", "byte range off:len")
		if err := gfs.Parse(rest[1:]); err != nil {
			return err
		}
		grest := gfs.Args()
		if len(grest) != 1 {
			return errors.New("usage: get [-range off:len] <key>")
		}
		target := url(grest[0])
		if *rng != "" {
			off, n, err := parseRange(*rng)
			if err != nil {
				return err
			}
			target = fmt.Sprintf("%s?off=%d&len=%d", target, off, n)
		}
		req, err := http.NewRequest(http.MethodGet, target, nil)
		if err != nil {
			return err
		}
		resp, err := do(req)
		if err != nil {
			return err
		}
		defer func() { _ = resp.Body.Close() }()
		if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
			return err
		}
		return nil

	case "del":
		if len(rest) != 2 {
			return errors.New("usage: del <key>")
		}
		req, err := http.NewRequest(http.MethodDelete, url(rest[1]), nil)
		if err != nil {
			return err
		}
		resp, err := do(req)
		if err != nil {
			return err
		}
		_ = resp.Body.Close()
		fmt.Printf("deleted %s via gateway\n", rest[1])
		return nil

	default:
		return fmt.Errorf("command %q needs direct mode (-meta/-sites); -gateway supports put, get, del", rest[0])
	}
}
