package main

import (
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"ecstore/internal/core"
	"ecstore/internal/gateway"
	"ecstore/internal/obs"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	rPipe, wPipe, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wPipe
	done := make(chan string, 1)
	go func() {
		buf, _ := io.ReadAll(rPipe)
		done <- string(buf)
	}()
	fn()
	_ = wPipe.Close()
	os.Stdout = old
	return <-done
}

// startHTTPGateway serves a real gateway (full in-process cluster behind
// it) over HTTP and returns the base URL.
func startHTTPGateway(t *testing.T) string {
	t.Helper()
	reg := obs.NewRegistry()
	cl, err := core.NewCluster(core.ClusterConfig{
		NumSites: 4,
		Client:   core.Config{K: 2, R: 2, StripeUnit: 1 << 10},
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	gw := gateway.New(gateway.Config{
		Metrics:       reg,
		DefaultTenant: &gateway.TenantConfig{RatePerSec: -1},
		Tenants:       map[string]gateway.TenantConfig{"suspended": {RatePerSec: 0, Burst: 0}},
	}, cl.Client)
	srv := httptest.NewServer(gateway.NewHTTPHandler(gw, reg, nil))
	t.Cleanup(srv.Close)
	return srv.URL
}

func TestCLIGatewayPutGetDel(t *testing.T) {
	base := startHTTPGateway(t)

	dir := t.TempDir()
	file := filepath.Join(dir, "payload")
	content := []byte("cli through the access tier")
	if err := os.WriteFile(file, content, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run([]string{"-gateway", base, "put", "gw-key", file}); err != nil {
		t.Fatalf("put: %v", err)
	}
	out := captureStdout(t, func() {
		if err := run([]string{"-gateway", base, "get", "gw-key"}); err != nil {
			t.Fatalf("get: %v", err)
		}
	})
	if out != string(content) {
		t.Fatalf("get = %q, want %q", out, content)
	}
	out = captureStdout(t, func() {
		if err := run([]string{"-gateway", base, "get", "-range", "4:7", "gw-key"}); err != nil {
			t.Fatalf("range get: %v", err)
		}
	})
	if out != "through" {
		t.Fatalf("range = %q", out)
	}
	if err := run([]string{"-gateway", base, "del", "gw-key"}); err != nil {
		t.Fatalf("del: %v", err)
	}
	if err := run([]string{"-gateway", base, "get", "gw-key"}); err == nil {
		t.Fatal("get after delete should fail")
	}
}

func TestCLIGatewayErrors(t *testing.T) {
	base := startHTTPGateway(t)
	dir := t.TempDir()
	file := filepath.Join(dir, "f")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Suspended tenant surfaces the gateway's 429.
	err := run([]string{"-gateway", base, "-tenant", "suspended", "put", "k", file})
	if err == nil {
		t.Fatal("suspended tenant put should fail")
	}
	// Cluster-topology commands refuse gateway mode.
	if err := run([]string{"-gateway", base, "stat"}); err == nil {
		t.Fatal("stat should need direct mode")
	}
	// Missing file.
	if err := run([]string{"-gateway", base, "put", "k", filepath.Join(dir, "absent")}); err == nil {
		t.Fatal("missing file accepted")
	}
}
