package main

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

// startTCPCluster boots a metadata server and n storage servers on
// loopback TCP and returns (metaAddr, sitesCSV).
func startTCPCluster(t *testing.T, n int) (string, string) {
	t.Helper()
	tcp := &transport.TCP{}

	ids := make([]model.SiteID, n)
	for i := range ids {
		ids[i] = model.SiteID(i + 1)
	}
	metaL, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	catalog := metadata.NewCatalog(ids)
	catalog.EnableMetrics(obs.NewRegistry())
	metaSrv := rpc.NewServer(metadata.NewServer(catalog))
	go func() { _ = metaSrv.Serve(metaL) }()
	t.Cleanup(func() { _ = metaSrv.Close() })

	var addrs []string
	for _, id := range ids {
		l, err := tcp.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		svc := storage.NewService(storage.ServiceConfig{
			Site:    id,
			Metrics: obs.NewRegistry(),
		}, storage.NewMemStore())
		srv := rpc.NewServer(storage.NewRPCServer(svc))
		go func() { _ = srv.Serve(l) }()
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, l.Addr().String())
	}
	return metaL.Addr().String(), strings.Join(addrs, ",")
}

func TestCLIPutGetDelStat(t *testing.T) {
	metaAddr, sites := startTCPCluster(t, 4)

	payload := []byte("cli round trip payload")
	file := filepath.Join(t.TempDir(), "in.bin")
	if err := os.WriteFile(file, payload, 0o644); err != nil {
		t.Fatal(err)
	}

	base := []string{"-meta", metaAddr, "-sites", sites}
	if err := run(append(base, "put", "k1", file)); err != nil {
		t.Fatalf("put: %v", err)
	}

	// Capture stdout of get.
	old := os.Stdout
	rPipe, wPipe, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wPipe
	getErr := run(append(base, "get", "k1"))
	_ = wPipe.Close()
	os.Stdout = old
	if getErr != nil {
		t.Fatalf("get: %v", getErr)
	}
	got := make([]byte, len(payload)+64)
	nRead, _ := rPipe.Read(got)
	if string(got[:nRead]) != string(payload) {
		t.Fatalf("get returned %q", got[:nRead])
	}

	if err := run(append(base, "stat")); err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := run(append(base, "del", "k1")); err != nil {
		t.Fatalf("del: %v", err)
	}
	if err := run(append(base, "get", "k1")); err == nil {
		t.Fatal("get after del succeeded")
	}
}

func TestCLIStatsSubcommand(t *testing.T) {
	metaAddr, sites := startTCPCluster(t, 4)
	base := []string{"-meta", metaAddr, "-sites", sites}

	payload := []byte("stats subcommand payload that spans several chunks")
	file := filepath.Join(t.TempDir(), "in.bin")
	if err := os.WriteFile(file, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "put", "k1", file)); err != nil {
		t.Fatalf("put: %v", err)
	}

	old := os.Stdout
	rPipe, wPipe, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wPipe
	statsErr := run(append(base, "stats"))
	_ = wPipe.Close()
	os.Stdout = old
	if statsErr != nil {
		t.Fatalf("stats: %v", statsErr)
	}
	out, err := io.ReadAll(rPipe)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"== sites ==", "writes=", "== metadata ==", "registers=1", "plan cache:"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	// The put stored k+r=4 chunks, one per site.
	if !strings.Contains(string(out), "writes=1") {
		t.Errorf("expected per-site write counts in output:\n%s", out)
	}

	// -full appends the raw metric dump.
	rPipe, wPipe, err = os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wPipe
	statsErr = run(append(base, "stats", "-full"))
	_ = wPipe.Close()
	os.Stdout = old
	if statsErr != nil {
		t.Fatalf("stats -full: %v", statsErr)
	}
	out, _ = io.ReadAll(rPipe)
	if !strings.Contains(string(out), "counter storage_writes_total") {
		t.Errorf("stats -full missing raw dump:\n%s", out)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	metaAddr, sites := startTCPCluster(t, 4)
	base := []string{"-meta", metaAddr, "-sites", sites}

	cases := [][]string{
		{},                           // no command
		append(base, "put"),          // missing args
		append(base, "get"),          // missing key
		append(base, "del"),          // missing key
		append(base, "frobnicate"),   // unknown command
		{"-sites", "", "get", "k"},   // missing sites
		append(base, "put", "k", "/does/not/exist"),
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d: expected error for %v", i, args)
		}
	}
}

func TestCLIConnectErrors(t *testing.T) {
	// Unreachable metadata server: pick a port nothing listens on.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	_ = l.Close()
	time.Sleep(10 * time.Millisecond)
	err = run([]string{"-meta", dead, "-sites", dead, "get", "x"})
	if err == nil {
		t.Fatal("connected to dead address")
	}
	_ = fmt.Sprintf("%v", err)
}
