// Command ecstore-cli is a client for a distributed EC-Store deployment:
// it connects to a metadata server and a set of storage sites over TCP and
// performs put/get/delete/stat operations.
//
//	ecstore-cli -meta 127.0.0.1:7100 -sites 127.0.0.1:7101,127.0.0.1:7102,... put key file
//	ecstore-cli ... put -stream key file   # stream through the striped pipeline ("-" = stdin)
//	ecstore-cli ... get key            # prints the block to stdout
//	ecstore-cli ... get -range 65536:4096 key   # print 4096 bytes from offset 65536
//	ecstore-cli ... del key
//	ecstore-cli ... stat               # cluster health and plan stats
//	ecstore-cli ... stat key           # one block's catalog record (version, sites)
//	ecstore-cli ... stats              # cluster-wide metrics snapshot
//	ecstore-cli ... stats -full        # raw dump of every remote metric
//
// A streamed put writes the block stripe-interleaved (see DESIGN.md §13),
// which is what makes later -range reads fetch only the stripes a byte
// range touches instead of reassembling the whole block.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ecstore/internal/core"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/rpc"
	"ecstore/internal/stats"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ecstore-cli", flag.ContinueOnError)
	metaAddr := fs.String("meta", "127.0.0.1:7100", "metadata server address")
	sitesCSV := fs.String("sites", "", "comma-separated storage site addresses (site 1 first)")
	gatewayURL := fs.String("gateway", "", "route put/get/del through a gateway's HTTP front at this base URL instead of dialing meta/sites directly")
	tenant := fs.String("tenant", "", "tenant name for -gateway requests (empty = default)")
	controlAddr := fs.String("control", "", "control-plane statistics service address (stats command only)")
	k := fs.Int("k", 2, "RS data chunks")
	r := fs.Int("r", 2, "RS parity chunks")
	delta := fs.Int("delta", 0, "late-binding surplus chunk requests")
	cacheBytes := fs.Int64("cache-bytes", 0, "decoded-block cache budget in bytes (0 disables the cache)")
	cacheStaleTTL := fs.Duration("cache-stale-ttl", 0, "serve cache entries invalidated up to this long ago when a block's sites are down (0 = never)")
	stripeUnit := fs.Int64("stripe-unit", 0, "stripe unit in bytes for streamed puts (0 = 64 KiB default)")
	packThreshold := fs.Int64("pack-threshold", 0, "pack puts at or below this many bytes into shared containers (0 disables packing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return errors.New("usage: ecstore-cli [flags] put|get|del|stat ...")
	}
	if *gatewayURL != "" {
		return runViaGateway(*gatewayURL, *tenant, rest)
	}
	if *sitesCSV == "" {
		return errors.New("-sites is required")
	}

	tcp := &transport.TCP{}

	conn, err := tcp.Dial(*metaAddr)
	if err != nil {
		return fmt.Errorf("connect metadata: %w", err)
	}
	metaRPC := rpc.NewClient(conn)
	defer func() { _ = metaRPC.Close() }()
	meta := metadata.NewClient(metaRPC)

	sites := make(map[model.SiteID]storage.SiteAPI)
	siteClients := make(map[model.SiteID]*storage.Client)
	var rpcClients []*rpc.Client
	defer func() {
		for _, c := range rpcClients {
			_ = c.Close()
		}
	}()
	for i, addr := range strings.Split(*sitesCSV, ",") {
		conn, err := tcp.Dial(strings.TrimSpace(addr))
		if err != nil {
			return fmt.Errorf("connect site %d (%s): %w", i+1, addr, err)
		}
		rc := rpc.NewClient(conn)
		rpcClients = append(rpcClients, rc)
		sc := storage.NewRPCClient(rc)
		sites[model.SiteID(i+1)] = sc
		siteClients[model.SiteID(i+1)] = sc
	}

	// A local registry collects client-side instrumentation (plan cache,
	// block cache, request phases) so `stats -full` can dump it.
	reg := obs.NewRegistry()
	client, err := core.NewClient(core.Config{
		K:             *k,
		R:             *r,
		Delta:         *delta,
		CacheBytes:    *cacheBytes,
		CacheStaleTTL: *cacheStaleTTL,
		StripeUnit:    *stripeUnit,
		PackThreshold: *packThreshold,
	}, core.Deps{Meta: meta, Sites: sites, Metrics: reg})
	if err != nil {
		return err
	}
	defer client.Close()

	switch rest[0] {
	case "put":
		pfs := flag.NewFlagSet("put", flag.ContinueOnError)
		stream := pfs.Bool("stream", false, "stream through the striped pipeline (PutReader); file may be \"-\" for stdin")
		if err := pfs.Parse(rest[1:]); err != nil {
			return err
		}
		prest := pfs.Args()
		if len(prest) != 2 {
			return errors.New("usage: put [-stream] <key> <file>")
		}
		if *stream {
			var src io.Reader
			if prest[1] == "-" {
				src = os.Stdin
			} else {
				f, err := os.Open(prest[1])
				if err != nil {
					return err
				}
				defer func() { _ = f.Close() }()
				src = f
			}
			n, err := client.PutReader(context.Background(), model.BlockID(prest[0]), src)
			if err != nil {
				return err
			}
			fmt.Printf("streamed %s (%d bytes, RS(%d,%d), striped)\n", prest[0], n, *k, *r)
			return nil
		}
		data, err := os.ReadFile(prest[1])
		if err != nil {
			return err
		}
		if err := client.Put(model.BlockID(prest[0]), data); err != nil {
			return err
		}
		// A packed put stages client-side; this process is about to
		// exit, so seal now — staged blocks are not durable (§13.5).
		if *packThreshold > 0 {
			if err := client.FlushPacked(context.Background()); err != nil {
				return err
			}
		}
		fmt.Printf("stored %s (%d bytes, RS(%d,%d))\n", prest[0], len(data), *k, *r)
		return nil

	case "get":
		gfs := flag.NewFlagSet("get", flag.ContinueOnError)
		rng := gfs.String("range", "", "byte range off:len — fetch and decode only the stripes the range touches")
		if err := gfs.Parse(rest[1:]); err != nil {
			return err
		}
		grest := gfs.Args()
		if len(grest) != 1 {
			return errors.New("usage: get [-range off:len] <key>")
		}
		if *rng != "" {
			off, n, err := parseRange(*rng)
			if err != nil {
				return err
			}
			start := time.Now()
			data, err := client.GetRange(context.Background(), model.BlockID(grest[0]), off, n)
			if err != nil {
				return err
			}
			if _, err := os.Stdout.Write(data); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "\nrange [%d,+%d): %d bytes in %.2fms\n",
				off, n, len(data), time.Since(start).Seconds()*1000)
			return nil
		}
		blocks, bd, err := client.GetMulti([]model.BlockID{model.BlockID(grest[0])})
		if err != nil {
			return err
		}
		if _, err := os.Stdout.Write(blocks[model.BlockID(grest[0])]); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "\nbreakdown: meta=%.2fms plan=%.2fms retrieve=%.2fms decode=%.2fms\n",
			bd.Metadata*1000, bd.Planning*1000, bd.Retrieve*1000, bd.Decode*1000)
		return nil

	case "del":
		if len(rest) != 2 {
			return errors.New("usage: del <key>")
		}
		if err := client.Delete(model.BlockID(rest[1])); err != nil {
			return err
		}
		fmt.Printf("deleted %s\n", rest[1])
		return nil

	case "stat":
		if len(rest) == 2 {
			// stat <key>: print the block's catalog record — the version
			// line lets scripts assert monotonicity across delete,
			// re-register and metadata-server restarts.
			id := model.BlockID(rest[1])
			metas, err := meta.Lookup([]model.BlockID{id})
			if err != nil {
				return err
			}
			m, ok := metas[id]
			if !ok {
				return fmt.Errorf("stat %s: not found", rest[1])
			}
			fmt.Printf("key=%s version=%d size=%d scheme=%d k=%d r=%d sites=%v\n",
				m.ID, m.Version, m.Size, m.Scheme, m.K, m.R, m.Sites)
			return nil
		}
		client.ProbeAll()
		fmt.Printf("sites: %d configured\n", len(sites))
		for id, api := range sites {
			pctx, pcancel := context.WithTimeout(context.Background(), 2*time.Second)
			status := "up"
			if api.Probe(pctx) != nil {
				status = "DOWN"
			}
			pcancel()
			fmt.Printf("  site %d: %s\n", id, status)
		}
		st := client.PlannerStats()
		fmt.Printf("plan cache: %d hits, %d misses (%.0f%% hit rate)\n",
			st.Hits, st.Misses, 100*st.HitRate())
		if cs := client.CacheStats(); cs.MaxBytes > 0 {
			fmt.Printf("block cache: %d entries, %d/%d bytes\n",
				cs.Entries, cs.Bytes, cs.MaxBytes)
		}
		return nil

	case "stats":
		sfs := flag.NewFlagSet("stats", flag.ContinueOnError)
		full := sfs.Bool("full", false, "raw dump of every remote metric")
		if err := sfs.Parse(rest[1:]); err != nil {
			return err
		}
		return clusterStats(os.Stdout, client, reg, meta, siteClients, tcp, *controlAddr, *full)

	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}
}

// parseRange parses the get -range argument "off:len" into byte offset
// and length.
func parseRange(s string) (off, n int64, err error) {
	lhs, rhs, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad -range %q, want off:len", s)
	}
	off, err = strconv.ParseInt(lhs, 10, 64)
	if err != nil || off < 0 {
		return 0, 0, fmt.Errorf("bad -range offset %q", lhs)
	}
	n, err = strconv.ParseInt(rhs, 10, 64)
	if err != nil || n < 0 {
		return 0, 0, fmt.Errorf("bad -range length %q", rhs)
	}
	return off, n, nil
}

// clusterStats snapshots every reachable service's metrics over the
// GetMetrics RPC and renders a cluster-wide summary. The plan-cache and
// block-cache lines are the local client's (both caches are per client
// process).
func clusterStats(w io.Writer, client *core.Client, reg *obs.Registry, meta *metadata.Client,
	siteClients map[model.SiteID]*storage.Client, tcp *transport.TCP, controlAddr string, full bool) error {
	ids := make([]model.SiteID, 0, len(siteClients))
	for id := range siteClients {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	fmt.Fprintln(w, "== sites ==")
	for _, id := range ids {
		snap, err := siteClients[id].Metrics()
		if err != nil {
			fmt.Fprintf(w, "site %d: unreachable (%v)\n", id, err)
			continue
		}
		label := strconv.FormatInt(int64(id), 10)
		fmt.Fprintf(w, "site %d: reads=%d writes=%d deletes=%d errors=%d",
			id,
			snap.CounterValue("storage_reads_total", label),
			snap.CounterValue("storage_writes_total", label),
			snap.CounterValue("storage_deletes_total", label),
			snap.CounterValue("storage_errors_total", label))
		if h, ok := snap.Histogram("storage_read_seconds", label); ok && h.Count > 0 {
			fmt.Fprintf(w, "  read p50=%.2fms p95=%.2fms p99=%.2fms",
				h.P50*1000, h.P95*1000, h.P99*1000)
		}
		fmt.Fprintln(w)
		if full {
			_ = snap.WriteText(w)
		}
	}

	fmt.Fprintln(w, "== metadata ==")
	if snap, err := meta.Metrics(); err != nil {
		fmt.Fprintf(w, "unreachable (%v)\n", err)
	} else {
		fmt.Fprintf(w, "blocks=%d registers=%d lookups=%d misses=%d placement updates=%d conflicts=%d\n",
			snap.GaugeValue("meta_blocks"),
			snap.CounterValue("meta_registers_total", ""),
			snap.CounterValue("meta_lookups_total", ""),
			snap.CounterValue("meta_lookup_misses_total", ""),
			snap.CounterValue("meta_placement_updates_total", ""),
			snap.CounterValue("meta_placement_conflicts_total", ""))
		if full {
			_ = snap.WriteText(w)
		}
	}

	if controlAddr != "" {
		fmt.Fprintln(w, "== control ==")
		conn, err := tcp.Dial(controlAddr)
		if err != nil {
			fmt.Fprintf(w, "unreachable (%v)\n", err)
		} else {
			rc := rpc.NewClient(conn)
			snap, err := stats.NewClient(rc).Metrics()
			_ = rc.Close()
			if err != nil {
				fmt.Fprintf(w, "unreachable (%v)\n", err)
			} else {
				fmt.Fprintf(w, "stats: accesses=%d load reports=%d probes=%d\n",
					snap.CounterValue("stats_accesses_total", ""),
					snap.CounterValue("stats_load_reports_total", ""),
					snap.CounterValue("stats_probe_observations_total", ""))
				fmt.Fprintf(w, "mover: moves=%d failures=%d\n",
					snap.CounterValue("mover_moves_total", ""),
					snap.CounterValue("mover_move_failures_total", ""))
				fmt.Fprintf(w, "repair: checks=%d repaired=%d gc=%d failed sites=%d\n",
					snap.CounterValue("repair_checks_total", ""),
					snap.CounterValue("repair_repaired_chunks_total", ""),
					snap.CounterValue("repair_gc_collected_total", ""),
					snap.GaugeValue("repair_failed_sites"))
				if full {
					_ = snap.WriteText(w)
				}
			}
		}
	}

	st := client.PlannerStats()
	fmt.Fprintln(w, "== local client ==")
	fmt.Fprintf(w, "plan cache: %d hits, %d misses (%.0f%% hit rate), %d greedy, %d exact\n",
		st.Hits, st.Misses, 100*st.HitRate(), st.Greedy, st.Exact)
	cs := client.CacheStats()
	if cs.MaxBytes > 0 {
		fmt.Fprintf(w, "block cache: %d hits, %d misses (%.0f%% hit rate), %d entries, %d/%d bytes, %d evictions, %d stale serves\n",
			cs.Hits, cs.Misses, 100*cs.HitRatio(), cs.Entries, cs.Bytes, cs.MaxBytes, cs.Evictions, cs.StaleServes)
	} else {
		fmt.Fprintln(w, "block cache: disabled (enable with -cache-bytes)")
	}
	if full {
		_ = reg.Snapshot().WriteText(w)
	}
	return nil
}
