// Command ecstore-cli is a client for a distributed EC-Store deployment:
// it connects to a metadata server and a set of storage sites over TCP and
// performs put/get/delete/stat operations.
//
//	ecstore-cli -meta 127.0.0.1:7100 -sites 127.0.0.1:7101,127.0.0.1:7102,... put key file
//	ecstore-cli ... get key            # prints the block to stdout
//	ecstore-cli ... del key
//	ecstore-cli ... stat               # cluster health and plan stats
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ecstore/internal/core"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ecstore-cli", flag.ContinueOnError)
	metaAddr := fs.String("meta", "127.0.0.1:7100", "metadata server address")
	sitesCSV := fs.String("sites", "", "comma-separated storage site addresses (site 1 first)")
	k := fs.Int("k", 2, "RS data chunks")
	r := fs.Int("r", 2, "RS parity chunks")
	delta := fs.Int("delta", 0, "late-binding surplus chunk requests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return errors.New("usage: ecstore-cli [flags] put|get|del|stat ...")
	}
	if *sitesCSV == "" {
		return errors.New("-sites is required")
	}

	tcp := &transport.TCP{}

	conn, err := tcp.Dial(*metaAddr)
	if err != nil {
		return fmt.Errorf("connect metadata: %w", err)
	}
	metaRPC := rpc.NewClient(conn)
	defer func() { _ = metaRPC.Close() }()
	meta := metadata.NewClient(metaRPC)

	sites := make(map[model.SiteID]storage.SiteAPI)
	var rpcClients []*rpc.Client
	defer func() {
		for _, c := range rpcClients {
			_ = c.Close()
		}
	}()
	for i, addr := range strings.Split(*sitesCSV, ",") {
		conn, err := tcp.Dial(strings.TrimSpace(addr))
		if err != nil {
			return fmt.Errorf("connect site %d (%s): %w", i+1, addr, err)
		}
		rc := rpc.NewClient(conn)
		rpcClients = append(rpcClients, rc)
		sites[model.SiteID(i+1)] = storage.NewRPCClient(rc)
	}

	client, err := core.NewClient(core.Config{
		K:     *k,
		R:     *r,
		Delta: *delta,
	}, core.Deps{Meta: meta, Sites: sites})
	if err != nil {
		return err
	}
	defer client.Close()

	switch rest[0] {
	case "put":
		if len(rest) != 3 {
			return errors.New("usage: put <key> <file>")
		}
		data, err := os.ReadFile(rest[2])
		if err != nil {
			return err
		}
		if err := client.Put(model.BlockID(rest[1]), data); err != nil {
			return err
		}
		fmt.Printf("stored %s (%d bytes, RS(%d,%d))\n", rest[1], len(data), *k, *r)
		return nil

	case "get":
		if len(rest) != 2 {
			return errors.New("usage: get <key>")
		}
		blocks, bd, err := client.GetMulti([]model.BlockID{model.BlockID(rest[1])})
		if err != nil {
			return err
		}
		if _, err := os.Stdout.Write(blocks[model.BlockID(rest[1])]); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "\nbreakdown: meta=%.2fms plan=%.2fms retrieve=%.2fms decode=%.2fms\n",
			bd.Metadata*1000, bd.Planning*1000, bd.Retrieve*1000, bd.Decode*1000)
		return nil

	case "del":
		if len(rest) != 2 {
			return errors.New("usage: del <key>")
		}
		if err := client.Delete(model.BlockID(rest[1])); err != nil {
			return err
		}
		fmt.Printf("deleted %s\n", rest[1])
		return nil

	case "stat":
		client.ProbeAll()
		fmt.Printf("sites: %d configured\n", len(sites))
		for id, api := range sites {
			status := "up"
			if api.Probe() != nil {
				status = "DOWN"
			}
			fmt.Printf("  site %d: %s\n", id, status)
		}
		st := client.PlannerStats()
		fmt.Printf("plan cache: %d hits, %d misses (%.0f%% hit rate)\n",
			st.Hits, st.Misses, 100*st.HitRate())
		return nil

	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}
}
