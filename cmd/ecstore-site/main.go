// Command ecstore-site runs one storage service of the EC-Store data
// plane over TCP.
//
//	ecstore-site -addr 127.0.0.1:7101 -site 1            # in-memory chunks
//	ecstore-site -addr 127.0.0.1:7102 -site 2 -dir /data # disk-backed
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ecstore-site", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7101", "listen address")
	siteID := fs.Int("site", 1, "site id (must be unique across the cluster)")
	dir := fs.String("dir", "", "chunk directory (empty = in-memory)")
	metricsAddr := fs.String("metrics-addr", "", "HTTP address for /metrics (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var store storage.Store
	if *dir == "" {
		store = storage.NewMemStore()
	} else {
		var err error
		store, err = storage.NewDiskStore(*dir)
		if err != nil {
			return err
		}
	}
	reg := obs.NewRegistry()
	svc := storage.NewService(storage.ServiceConfig{
		Site:    model.SiteID(*siteID),
		Metrics: reg,
	}, store)

	tcp := &transport.TCP{Metrics: transport.NewMetrics(reg)}
	l, err := tcp.Listen(*addr)
	if err != nil {
		return err
	}
	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", ml.Addr())
		//lint:ignore goleak metrics endpoint serves for the process lifetime by design
		go func() { _ = obs.Serve(ml, reg, nil) }()
	}
	fmt.Printf("ecstore-site %d serving on %s (store: %s)\n", *siteID, l.Addr(), storeKind(*dir))
	srv := rpc.NewServer(storage.NewRPCServer(svc))
	srv.SetMetrics(rpc.NewMetrics(reg, "rpc_server"))
	return srv.Serve(l)
}

func storeKind(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}
