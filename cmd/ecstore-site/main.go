// Command ecstore-site runs one storage service of the EC-Store data
// plane over TCP.
//
//	ecstore-site -addr 127.0.0.1:7101 -site 1            # in-memory chunks
//	ecstore-site -addr 127.0.0.1:7102 -site 2 -dir /data # disk-backed
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ecstore/internal/model"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ecstore-site", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7101", "listen address")
	siteID := fs.Int("site", 1, "site id (must be unique across the cluster)")
	dir := fs.String("dir", "", "chunk directory (empty = in-memory)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var store storage.Store
	if *dir == "" {
		store = storage.NewMemStore()
	} else {
		var err error
		store, err = storage.NewDiskStore(*dir)
		if err != nil {
			return err
		}
	}
	svc := storage.NewService(storage.ServiceConfig{Site: model.SiteID(*siteID)}, store)

	tcp := &transport.TCP{}
	l, err := tcp.Listen(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("ecstore-site %d serving on %s (store: %s)\n", *siteID, l.Addr(), storeKind(*dir))
	srv := rpc.NewServer(storage.NewRPCServer(svc))
	return srv.Serve(l)
}

func storeKind(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}
