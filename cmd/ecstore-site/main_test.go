package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bogus flag accepted")
	}
	if err := run([]string{"-addr", "999.999.999.999:1"}); err == nil {
		t.Fatal("invalid address accepted")
	}
}

func TestRunServesStorageRPC(t *testing.T) {
	// Pick a free port first.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()

	errCh := make(chan error, 1)
	go func() { errCh <- run([]string{"-addr", addr, "-site", "7", "-dir", t.TempDir()}) }()

	// Dial with retry while the server binds.
	tcp := &transport.TCP{DialTimeout: time.Second}
	var conn net.Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err = tcp.Dial(addr)
		if err == nil {
			break
		}
		select {
		case e := <-errCh:
			t.Fatalf("server exited early: %v", e)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	client := storage.NewRPCClient(rpc.NewClient(conn))
	ref := model.ChunkRef{Block: "smoke", Chunk: 0}
	if err := client.PutChunk(context.Background(), ref, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	got, err := client.GetChunk(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "over tcp" {
		t.Fatalf("got %q", got)
	}
	if err := client.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestRunServesMetricsHTTP(t *testing.T) {
	rpcL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rpcAddr := rpcL.Addr().String()
	_ = rpcL.Close()
	metricsL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	metricsAddr := metricsL.Addr().String()
	_ = metricsL.Close()

	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", rpcAddr, "-site", "9", "-metrics-addr", metricsAddr})
	}()

	// Store one chunk over RPC, then read the metrics dump over HTTP.
	tcp := &transport.TCP{DialTimeout: time.Second}
	var conn net.Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err = tcp.Dial(rpcAddr)
		if err == nil {
			break
		}
		select {
		case e := <-errCh:
			t.Fatalf("server exited early: %v", e)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	client := storage.NewRPCClient(rpc.NewClient(conn))
	if err := client.PutChunk(context.Background(), model.ChunkRef{Block: "m", Chunk: 0}, []byte("x")); err != nil {
		t.Fatal(err)
	}

	var body []byte
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + metricsAddr + "/metrics")
		if err == nil {
			body, _ = io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(string(body), `storage_writes_total{site="9"} 1`) {
		t.Fatalf("metrics dump missing write counter:\n%s", body)
	}
	if !strings.Contains(string(body), "rpc_server_requests_total") {
		t.Fatalf("metrics dump missing rpc server metrics:\n%s", body)
	}
}

func TestStoreKind(t *testing.T) {
	if storeKind("") != "memory" || !strings.Contains(storeKind("/x"), "/x") {
		t.Fatal("storeKind rendering")
	}
}
