package main

import (
	"net"
	"strings"
	"testing"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bogus flag accepted")
	}
	if err := run([]string{"-addr", "999.999.999.999:1"}); err == nil {
		t.Fatal("invalid address accepted")
	}
}

func TestRunServesStorageRPC(t *testing.T) {
	// Pick a free port first.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()

	errCh := make(chan error, 1)
	go func() { errCh <- run([]string{"-addr", addr, "-site", "7", "-dir", t.TempDir()}) }()

	// Dial with retry while the server binds.
	tcp := &transport.TCP{DialTimeout: time.Second}
	var conn net.Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err = tcp.Dial(addr)
		if err == nil {
			break
		}
		select {
		case e := <-errCh:
			t.Fatalf("server exited early: %v", e)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	client := storage.NewRPCClient(rpc.NewClient(conn))
	ref := model.ChunkRef{Block: "smoke", Chunk: 0}
	if err := client.PutChunk(ref, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	got, err := client.GetChunk(ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "over tcp" {
		t.Fatalf("got %q", got)
	}
	if err := client.Probe(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreKind(t *testing.T) {
	if storeKind("") != "memory" || !strings.Contains(storeKind("/x"), "/x") {
		t.Fatal("storeKind rendering")
	}
}
