package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ecstore/internal/gateway"
)

// runGatewaySweep drives a live gateway daemon over HTTP with an
// open-loop constant-rate schedule: one point per offered rate, each
// request fired on its own goroutine at its scheduled instant whether or
// not earlier requests completed. Writes alternate with reads so both
// directions exercise admission, and 429 responses count as shed — the
// signal the CI smoke job greps for alongside the daemon's own
// gateway_shed_total.
func runGatewaySweep(base, tenant, rateList string, dur time.Duration) error {
	base = strings.TrimRight(base, "/")
	var rates []float64
	for _, f := range strings.Split(rateList, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		r, err := strconv.ParseFloat(f, 64)
		if err != nil || r <= 0 {
			return fmt.Errorf("bad rate %q in -gw-rates", f)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return fmt.Errorf("-gw-rates selected no rates")
	}

	client := &http.Client{Timeout: 10 * time.Second}
	payload := bytes.Repeat([]byte("ecstore-gateway-sweep-"), 48) // ~1 KiB
	fmt.Printf("live gateway sweep: %s tenant=%q %v per point\n", base, tenant, dur)
	fmt.Printf("%-12s %-10s %-10s %-8s %-8s %10s %10s\n",
		"offered/s", "sent", "ok", "shed429", "errors", "p50", "p99")

	for pt, rate := range rates {
		interval := time.Duration(float64(time.Second) / rate)
		deadline := time.Now().Add(dur)
		var (
			wg                 sync.WaitGroup
			sent, ok429, okAll atomic.Int64
			errs               atomic.Int64
			mu                 sync.Mutex
			lats               []float64
		)
		for i := 0; time.Now().Before(deadline); i++ {
			seq := i
			sent.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Writes use a key unique across the whole sweep — the
				// store refuses re-puts of live keys, so reused key names
				// would read as errors past the first cycle. Each read
				// targets the key of the write fired just before it.
				var req *http.Request
				var err error
				if seq%2 == 0 {
					key := fmt.Sprintf("sweep-%d-%d", pt, seq)
					req, err = http.NewRequest(http.MethodPut, base+"/v1/blocks/"+key, bytes.NewReader(payload))
				} else {
					key := fmt.Sprintf("sweep-%d-%d", pt, seq-1)
					req, err = http.NewRequest(http.MethodGet, base+"/v1/blocks/"+key, nil)
				}
				if err != nil {
					errs.Add(1)
					return
				}
				if tenant != "" {
					req.Header.Set(gateway.TenantHeader, tenant)
				}
				start := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					errs.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					ok429.Add(1)
				case resp.StatusCode < 300:
					okAll.Add(1)
					mu.Lock()
					lats = append(lats, time.Since(start).Seconds())
					mu.Unlock()
				case resp.StatusCode == http.StatusNotFound && seq%2 == 1:
					// A read racing its key's first write; not an error.
					okAll.Add(1)
				default:
					errs.Add(1)
				}
			}()
			time.Sleep(interval)
		}
		wg.Wait()
		sort.Float64s(lats)
		p := func(q float64) float64 {
			if len(lats) == 0 {
				return 0
			}
			idx := int(q / 100 * float64(len(lats)-1))
			return lats[idx] * 1000
		}
		fmt.Printf("%-12.0f %-10d %-10d %-8d %-8d %8.2fms %8.2fms\n",
			rate, sent.Load(), okAll.Load(), ok429.Load(), errs.Load(), p(50), p(99))
	}
	return nil
}
