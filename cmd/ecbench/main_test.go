package main

import "testing"

func TestRunnersCoverExperimentIndex(t *testing.T) {
	// Every experiment id promised by DESIGN.md's index must exist.
	want := []string{
		"fig1", "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f",
		"fig4g", "fig4h", "tab2", "tab3",
		"ab-delta", "ab-k", "ab-w2", "ab-mrate", "ab-plan", "ab-size",
		"ab-cache", "ab-codec", "ab-range", "ab-pack", "ab-scrub",
		"ab-gateway", "ab-meta",
	}
	all := runners()
	if len(all) != len(want) {
		t.Fatalf("have %d runners, want %d", len(all), len(want))
	}
	for _, id := range want {
		if _, ok := all[id]; !ok {
			t.Errorf("missing runner %q", id)
		}
	}
}

func TestRunArgumentValidation(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bogus flag accepted")
	}
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-scale", "galactic", "-exp", "fig1"}); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if err := run([]string{"-cache-bytes", "-5", "-scale", "quick"}); err == nil {
		t.Fatal("negative cache budget accepted")
	}
}
