// Command ecbench regenerates the paper's tables and figures on the
// deterministic EC-Store simulator.
//
// Usage:
//
//	ecbench -exp fig4b                # one experiment, full scale
//	ecbench -exp all -scale quick     # everything, fast
//	ecbench -list                     # list experiment ids
//	ecbench -faults -scale quick      # degraded-mode read latency under injected faults
//	ecbench -cache-bytes 33554432 -scale quick   # cache on/off comparison, same invocation
//
// Experiment ids follow the paper: fig1, fig4a ... fig4h, tab2, tab3,
// plus the ablations ab-delta, ab-k, ab-w2, ab-mrate, ab-plan, ab-size,
// ab-cache, ab-codec, ab-range, ab-pack, ab-scrub (codec/range/pack exercise the real
// data path — codec throughput, whole-block Get vs GetRange, and
// small-object packing — rather than the simulator).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ecstore/internal/bench"
)

type runner func(bench.Scale) (*bench.Report, error)

func runners() map[string]runner {
	return map[string]runner{
		"fig1": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.Fig1(sc)
			return r, err
		},
		"fig4a": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.Fig4a(sc)
			return r, err
		},
		"fig4b": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.Fig4b(sc)
			return r, err
		},
		"fig4c": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.Fig4c(sc)
			return r, err
		},
		"fig4d": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.Fig4d(sc)
			return r, err
		},
		"fig4e": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.Fig4e(sc)
			return r, err
		},
		"fig4f": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.Fig4f(sc)
			return r, err
		},
		"fig4g": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.Fig4g(sc)
			return r, err
		},
		"fig4h": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.Fig4h(sc)
			return r, err
		},
		"tab2": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.Table2(sc)
			return r, err
		},
		"tab3": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.Table3(sc)
			return r, err
		},
		"ab-delta": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.AblationDelta(sc)
			return r, err
		},
		"ab-k": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.AblationK(sc)
			return r, err
		},
		"ab-w2": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.AblationW2(sc)
			return r, err
		},
		"ab-mrate": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.AblationMoverRate(sc)
			return r, err
		},
		"ab-plan": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.AblationPlanQuality(sc)
			return r, err
		},
		"ab-size": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.AblationBlockSize(sc)
			return r, err
		},
		"ab-cache": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.AblationCache(sc)
			return r, err
		},
		"ab-scrub": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.AblationScrub(sc)
			return r, err
		},
		"ab-codec": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.AblationCodec(sc)
			return r, err
		},
		"ab-range": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.AblationRange(sc)
			return r, err
		},
		"ab-pack": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.AblationPack(sc)
			return r, err
		},
		"ab-gateway": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.AblationGateway(sc)
			return r, err
		},
		"ab-meta": func(sc bench.Scale) (*bench.Report, error) {
			r, _, err := bench.AblationMeta(sc)
			return r, err
		},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ecbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ecbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (or 'all')")
	mode := fs.String("mode", "", "alias for -exp")
	scaleName := fs.String("scale", "full", "experiment scale: quick | mid | full")
	seed := fs.Int64("seed", 42, "simulation seed")
	list := fs.Bool("list", false, "list experiment ids and exit")
	faultsOnly := fs.Bool("faults", false, "measure degraded-mode read latency under injected faults and exit")
	cacheBytes := fs.Int64("cache-bytes", 0, "run a cache on/off comparison with this byte budget and exit")
	jsonOut := fs.String("json", "", "write machine-readable results to this file (ab-gateway defaults to BENCH_9.json, ab-meta to BENCH_10.json)")
	gwAddr := fs.String("gateway", "", "sweep a live gateway over HTTP at this base URL (e.g. http://localhost:8080) and exit")
	gwTenant := fs.String("gw-tenant", "", "tenant header for the live gateway sweep (empty = default)")
	gwRates := fs.String("gw-rates", "50,200,1000", "comma-separated offered rates (req/s) for the live gateway sweep")
	gwDur := fs.Duration("gw-duration", 2*time.Second, "duration of each live gateway sweep point")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mode != "" {
		*exp = *mode
	}

	if *gwAddr != "" {
		return runGatewaySweep(*gwAddr, *gwTenant, *gwRates, *gwDur)
	}

	all := runners()
	ids := make([]string, 0, len(all))
	for id := range all {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil
	}

	var sc bench.Scale
	switch *scaleName {
	case "quick":
		sc = bench.QuickScale(*seed)
	case "mid":
		sc = bench.MidScale(*seed)
	case "full":
		sc = bench.FullScale(*seed)
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	if *cacheBytes < 0 {
		return fmt.Errorf("-cache-bytes must be non-negative, got %d", *cacheBytes)
	}
	if *cacheBytes > 0 {
		start := time.Now()
		report, _, err := bench.CacheComparison(sc, *cacheBytes)
		if err != nil {
			return err
		}
		fmt.Println(report)
		fmt.Printf("(%s scale, seed %d, %s)\n", sc.Name, sc.Seed, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *faultsOnly {
		start := time.Now()
		report, err := bench.DegradedMode(sc)
		if err != nil {
			return err
		}
		fmt.Println(report)
		fmt.Printf("(%s scale, seed %d, %s)\n", sc.Name, sc.Seed, time.Since(start).Round(time.Millisecond))
		return nil
	}

	var selected []string
	if *exp == "all" {
		selected = ids
	} else {
		if _, ok := all[*exp]; !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		selected = []string{*exp}
	}
	if *jsonOut == "" && *exp == "ab-gateway" {
		*jsonOut = "BENCH_9.json"
	}
	if *jsonOut == "" && *exp == "ab-meta" {
		*jsonOut = "BENCH_10.json"
	}

	var reports []*bench.Report
	for _, id := range selected {
		start := time.Now()
		report, err := all[id](sc)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		reports = append(reports, report)
		fmt.Println(report)
		fmt.Printf("(%s scale, seed %d, %s)\n\n", sc.Name, sc.Seed, time.Since(start).Round(time.Millisecond))
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, sc, reports); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	return nil
}

// writeJSON emits the run's machine-readable results: one object per
// report, each carrying its raw sweep data, under the scale/seed that
// produced them. A single-report run (e.g. -mode ab-gateway) still
// writes the array form so consumers parse one shape.
func writeJSON(path string, sc bench.Scale, reports []*bench.Report) error {
	doc := struct {
		Scale   string          `json:"scale"`
		Seed    int64           `json:"seed"`
		Reports []*bench.Report `json:"reports"`
	}{Scale: sc.Name, Seed: sc.Seed, Reports: reports}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal %s: %w", path, err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}
