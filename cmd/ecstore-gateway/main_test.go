package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"ecstore/internal/gateway"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

func TestParseTenants(t *testing.T) {
	got, err := parseTenants("alice:100:200:1048576, bob:-1, carol:0:0")
	if err != nil {
		t.Fatal(err)
	}
	a := got["alice"]
	if a.RatePerSec != 100 || a.Burst != 200 || a.ByteQuota != 1<<20 {
		t.Fatalf("alice = %+v", a)
	}
	if got["bob"].RatePerSec != -1 || got["bob"].ByteQuota != 0 {
		t.Fatalf("bob = %+v", got["bob"])
	}
	c := got["carol"]
	if c.RatePerSec != 0 || c.Burst != 0 {
		t.Fatalf("carol = %+v", c)
	}

	if m, err := parseTenants("  "); err != nil || m != nil {
		t.Fatalf("empty spec = %v, %v", m, err)
	}
	for _, bad := range []string{"noratehere", "x:abc", "x:1:y", "x:1:1:-3", "a:1,a:2", ":5"} {
		if _, err := parseTenants(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bogus flag accepted")
	}
	if err := run([]string{"-sites", "x"}); err == nil {
		t.Fatal("missing fronts accepted")
	}
	if err := run([]string{"-http", "127.0.0.1:0"}); err == nil {
		t.Fatal("missing -sites accepted")
	}
	if err := run([]string{"-http", "127.0.0.1:0", "-sites", "x", "-tenants", "oops"}); err == nil {
		t.Fatal("bad tenant spec accepted")
	}
}

// startBackend brings up a real metadata server and n storage sites over
// TCP, returning their addresses.
func startBackend(t *testing.T, n int) (metaAddr string, siteAddrs []string) {
	t.Helper()
	ids := make([]model.SiteID, n)
	for i := range ids {
		ids[i] = model.SiteID(i + 1)
	}
	catalog := metadata.NewCatalog(ids)
	tcp := &transport.TCP{}

	ml, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	msrv := rpc.NewServer(metadata.NewServer(catalog))
	go msrv.Serve(ml) //lint:ignore goleak test server torn down by Close in cleanup
	t.Cleanup(func() { msrv.Close() })
	metaAddr = ml.Addr().String()

	for _, id := range ids {
		svc := storage.NewService(storage.ServiceConfig{Site: id}, storage.NewMemStore())
		sl, err := tcp.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ssrv := rpc.NewServer(storage.NewRPCServer(svc))
		go ssrv.Serve(sl) //lint:ignore goleak test server torn down by Close in cleanup
		t.Cleanup(func() { ssrv.Close() })
		siteAddrs = append(siteAddrs, sl.Addr().String())
	}
	return metaAddr, siteAddrs
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

func TestGatewayDaemonHTTPEndToEnd(t *testing.T) {
	metaAddr, siteAddrs := startBackend(t, 4)
	httpAddr := freeAddr(t)

	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-http", httpAddr,
			"-meta", metaAddr,
			"-sites", strings.Join(siteAddrs, ","),
			"-tenants", "blocked:0:0",
			"-default-rate", "-1",
		})
	}()

	base := "http://" + httpAddr
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		select {
		case e := <-errCh:
			t.Fatalf("daemon exited early: %v", e)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	payload := []byte("through the daemon, erasure coded, over real TCP")
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/blocks/e2e", bytes.NewReader(payload))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put status = %d", resp.StatusCode)
	}

	resp, err = client.Get(base + "/v1/blocks/e2e")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, payload) {
		t.Fatalf("get = %d %q", resp.StatusCode, got)
	}

	resp, err = client.Get(base + "/v1/blocks/e2e?off=12&len=6")
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(got) != "daemon" {
		t.Fatalf("range = %q", got)
	}

	// The suspended tenant is shed with 429 and a Retry-After hint.
	req, _ = http.NewRequest(http.MethodPut, base+"/v1/blocks/x", bytes.NewReader([]byte("y")))
	req.Header.Set("X-EC-Tenant", "blocked")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("blocked tenant status = %d", resp.StatusCode)
	}

	resp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"gateway_admitted_total", `gateway_shed_total{reason="rate"} 1`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestGatewayDaemonRPCFront(t *testing.T) {
	metaAddr, siteAddrs := startBackend(t, 4)
	rpcAddr := freeAddr(t)

	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-addr", rpcAddr,
			"-meta", metaAddr,
			"-sites", strings.Join(siteAddrs, ","),
			"-default-rate", "-1",
		})
	}()

	tcp := &transport.TCP{DialTimeout: time.Second}
	var conn net.Conn
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err = tcp.Dial(rpcAddr)
		if err == nil {
			break
		}
		select {
		case e := <-errCh:
			t.Fatalf("daemon exited early: %v", e)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	rc := rpc.NewClient(conn)
	t.Cleanup(func() { rc.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cli := gateway.NewRPCClient(rc, "rpc-tenant")
	if err := cli.Put(ctx, "rpc-blk", []byte("native front over tcp")); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Get(ctx, "rpc-blk")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "native front over tcp" {
		t.Fatalf("get = %q", got)
	}
}
