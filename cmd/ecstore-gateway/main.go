// Command ecstore-gateway runs the multi-tenant access daemon: one
// pooled EC-Store client (plan cache, block cache, breakers, hedging)
// multiplexed across tenants behind per-tenant token-bucket rate limits,
// byte quotas and bounded-queue admission control (DESIGN.md §15).
//
//	ecstore-gateway -meta 127.0.0.1:7100 -sites 127.0.0.1:7101,... \
//	    -addr 127.0.0.1:7300 -http 127.0.0.1:8080 \
//	    -tenants "alice:100:200:0,bob:10:10:1048576" -default-rate -1
//
// Tenant specs are name:rate:burst:quota — rate in requests/second
// (-1 = unlimited, 0 = suspended), burst in requests (0 = rate, min 1),
// quota in total bytes transferred (0 = unlimited). Tenants not listed
// fall back to the -default-* contract; with no default, unknown
// tenants are rejected.
//
// The HTTP front serves PUT/GET/DELETE (and ?off=&len= ranges) under
// /v1/blocks/<key> with the tenant taken from the X-EC-Tenant header,
// plus /metrics, /traces and /healthz. The native RPC front speaks the
// same framing as the rest of the cluster.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"ecstore/internal/core"
	"ecstore/internal/gateway"
	"ecstore/internal/health"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ecstore-gateway", flag.ContinueOnError)
	addr := fs.String("addr", "", "native RPC listen address (empty = RPC front disabled)")
	httpAddr := fs.String("http", "", "HTTP listen address (empty = HTTP front disabled)")
	metaAddr := fs.String("meta", "127.0.0.1:7100", "metadata server address")
	sitesCSV := fs.String("sites", "", "comma-separated storage site addresses (site 1 first)")
	k := fs.Int("k", 2, "RS data chunks")
	r := fs.Int("r", 2, "RS parity chunks")
	delta := fs.Int("delta", 0, "late-binding surplus chunk requests")
	cacheBytes := fs.Int64("cache-bytes", 0, "decoded-block cache budget in bytes (0 disables the cache)")
	stripeUnit := fs.Int64("stripe-unit", 0, "stripe unit in bytes for streamed puts (0 = 64 KiB default)")
	hedgeDelay := fs.Duration("hedge-delay", 0, "hedge straggling chunk fetches after this delay (0 = off)")
	concurrency := fs.Int("concurrency", 0, "requests proxied concurrently (0 = 64)")
	queueDepth := fs.Int("queue-depth", 0, "admission queue bound (0 = 2x concurrency)")
	tenantsSpec := fs.String("tenants", "", "tenant contracts name:rate:burst:quota, comma-separated")
	defaultRate := fs.Float64("default-rate", 0, "default tenant rate limit in req/s (-1 = unlimited, 0 with no other default knobs = reject unknown tenants)")
	defaultBurst := fs.Float64("default-burst", 0, "default tenant burst (0 = rate, min 1)")
	defaultQuota := fs.Int64("default-quota", 0, "default tenant byte quota (0 = unlimited)")
	metricsAddr := fs.String("metrics-addr", "", "separate HTTP address for /metrics (the HTTP front serves /metrics too)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" && *httpAddr == "" {
		return errors.New("need at least one front: -addr (RPC) or -http")
	}
	if *sitesCSV == "" {
		return errors.New("-sites is required")
	}
	tenants, err := parseTenants(*tenantsSpec)
	if err != nil {
		return err
	}
	var defTenant *gateway.TenantConfig
	if *defaultRate != 0 || *defaultBurst != 0 || *defaultQuota != 0 {
		defTenant = &gateway.TenantConfig{
			RatePerSec: *defaultRate,
			Burst:      *defaultBurst,
			ByteQuota:  *defaultQuota,
		}
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(128, reg)
	tcp := &transport.TCP{Metrics: transport.NewMetrics(reg)}

	conn, err := tcp.Dial(*metaAddr)
	if err != nil {
		return fmt.Errorf("connect metadata: %w", err)
	}
	metaRPC := rpc.NewClient(conn)
	defer func() { _ = metaRPC.Close() }()
	meta := metadata.NewClient(metaRPC)

	sites := make(map[model.SiteID]storage.SiteAPI)
	var rpcClients []*rpc.Client
	defer func() {
		for _, c := range rpcClients {
			_ = c.Close()
		}
	}()
	for i, siteAddr := range strings.Split(*sitesCSV, ",") {
		conn, err := tcp.Dial(strings.TrimSpace(siteAddr))
		if err != nil {
			return fmt.Errorf("connect site %d (%s): %w", i+1, siteAddr, err)
		}
		rc := rpc.NewClient(conn)
		rpcClients = append(rpcClients, rc)
		sites[model.SiteID(i+1)] = storage.NewRPCClient(rc)
	}

	// One shared pressure signal couples the admission queue to the
	// client's hedging policy: under access-tier overload extra chunk
	// fetches only deepen the queues they are meant to dodge.
	qd := *queueDepth
	if qd <= 0 {
		c := *concurrency
		if c <= 0 {
			c = 64
		}
		qd = 2 * c
	}
	pressure := health.NewPressure(qd)

	client, err := core.NewClient(core.Config{
		K:          *k,
		R:          *r,
		Delta:      *delta,
		CacheBytes: *cacheBytes,
		StripeUnit: *stripeUnit,
		HedgeDelay: *hedgeDelay,
	}, core.Deps{Meta: meta, Sites: sites, Metrics: reg, Tracer: tracer, Pressure: pressure})
	if err != nil {
		return err
	}
	defer client.Close()

	gw := gateway.New(gateway.Config{
		Tenants:       tenants,
		DefaultTenant: defTenant,
		Concurrency:   *concurrency,
		QueueDepth:    *queueDepth,
		Metrics:       reg,
		Pressure:      pressure,
	}, client)

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", ml.Addr())
		//lint:ignore goleak metrics endpoint serves for the process lifetime by design
		go func() { _ = obs.Serve(ml, reg, tracer) }()
	}

	var httpSrv func() error
	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("http listener: %w", err)
		}
		fmt.Printf("ecstore-gateway HTTP on http://%s/v1/blocks/ (%s)\n", hl.Addr(), describeTenants(tenants, defTenant))
		handler := gateway.NewHTTPHandler(gw, reg, tracer)
		httpSrv = func() error { return http.Serve(hl, handler) }
	}

	if *addr != "" {
		l, err := tcp.Listen(*addr)
		if err != nil {
			return err
		}
		fmt.Printf("ecstore-gateway RPC on %s\n", l.Addr())
		srv := rpc.NewServer(gateway.NewRPCServer(gw, reg))
		srv.SetMetrics(rpc.NewMetrics(reg, "rpc_server"))
		if httpSrv != nil {
			//lint:ignore goleak HTTP front serves for the process lifetime by design
			go func() { _ = httpSrv() }()
		}
		return srv.Serve(l)
	}
	return httpSrv()
}

// parseTenants parses the -tenants spec: comma-separated
// name:rate[:burst[:quota]] entries.
func parseTenants(spec string) (map[string]gateway.TenantConfig, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	out := make(map[string]gateway.TenantConfig)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("tenant %q: want name:rate[:burst[:quota]]", entry)
		}
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return nil, fmt.Errorf("tenant %q: empty name", entry)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("tenant %q listed twice", name)
		}
		var cfg gateway.TenantConfig
		rate, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: bad rate %q", name, parts[1])
		}
		cfg.RatePerSec = rate
		if len(parts) >= 3 && parts[2] != "" {
			burst, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || burst < 0 {
				return nil, fmt.Errorf("tenant %s: bad burst %q", name, parts[2])
			}
			cfg.Burst = burst
		}
		if len(parts) == 4 && parts[3] != "" {
			quota, err := strconv.ParseInt(parts[3], 10, 64)
			if err != nil || quota < 0 {
				return nil, fmt.Errorf("tenant %s: bad quota %q", name, parts[3])
			}
			cfg.ByteQuota = quota
		}
		out[name] = cfg
	}
	return out, nil
}

// describeTenants renders the tenant table for the startup banner.
func describeTenants(tenants map[string]gateway.TenantConfig, def *gateway.TenantConfig) string {
	switch {
	case len(tenants) == 0 && def == nil:
		return "open access"
	case def == nil:
		return fmt.Sprintf("%d tenants, unknown rejected", len(tenants))
	default:
		return fmt.Sprintf("%d tenants + default contract", len(tenants))
	}
}
