// Command ecstore-control runs EC-Store's control plane for a distributed
// deployment: the statistics service (served over RPC for clients to
// report accesses), periodic load collection and o_j probing of every
// storage site, and the unified background task scheduler that executes
// chunk movement, failure repair, checksum scrubbing and site drains.
//
//	ecstore-control -addr 127.0.0.1:7105 \
//	  -meta 127.0.0.1:7100 \
//	  -sites 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103,127.0.0.1:7104 \
//	  -mover -repair -scrub
//
// Administrative subcommands talk to the metadata server's durable task
// table, which the daemon's scheduler polls — so they work whether or not
// the daemon runs on the same host:
//
//	ecstore-control drain -meta 127.0.0.1:7100 -site 3
//	ecstore-control scrub -meta 127.0.0.1:7100 [-site 3]
//	ecstore-control tasks -meta 127.0.0.1:7100
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ecstore/internal/core"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/repair"
	"ecstore/internal/rpc"
	"ecstore/internal/stats"
	"ecstore/internal/storage"
	"ecstore/internal/tasks"
	"ecstore/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "drain":
			return runDrain(args[1:])
		case "scrub":
			return runScrub(args[1:])
		case "tasks":
			return runTasks(args[1:])
		}
	}
	return runDaemon(args)
}

// dialMeta connects a metadata client; the caller closes the returned
// closer.
func dialMeta(addr string) (metadata.Service, func(), error) {
	tcp := &transport.TCP{}
	conn, err := tcp.Dial(addr)
	if err != nil {
		return nil, nil, fmt.Errorf("connect metadata: %w", err)
	}
	c := rpc.NewClient(conn)
	return metadata.NewClient(c), func() { _ = c.Close() }, nil
}

// runDrain marks a site draining and enqueues its drain task.
func runDrain(args []string) error {
	fs := flag.NewFlagSet("ecstore-control drain", flag.ContinueOnError)
	metaAddr := fs.String("meta", "127.0.0.1:7100", "metadata server address")
	site := fs.Int("site", 0, "site ID to drain")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *site <= 0 {
		return errors.New("-site is required")
	}
	meta, closeMeta, err := dialMeta(*metaAddr)
	if err != nil {
		return err
	}
	defer closeMeta()
	id := model.SiteID(*site)
	info := meta.SiteInfos()[id]
	info.ID = id
	if info.State == model.SiteActive {
		info.State = model.SiteDraining
		if err := meta.SetSiteInfo(info); err != nil {
			return fmt.Errorf("mark site draining: %w", err)
		}
	}
	if err := meta.PutTask(&model.TaskRecord{
		ID:       fmt.Sprintf("drain-site-%d", id),
		Type:     model.TaskTypeDrainSite,
		Site:     id,
		Priority: model.PriorityDrain,
		State:    model.TaskPending,
	}); err != nil {
		return fmt.Errorf("enqueue drain: %w", err)
	}
	fmt.Printf("site %d: draining; drain task enqueued\n", id)
	return nil
}

// runScrub enqueues scrub tasks for one site or all sites.
func runScrub(args []string) error {
	fs := flag.NewFlagSet("ecstore-control scrub", flag.ContinueOnError)
	metaAddr := fs.String("meta", "127.0.0.1:7100", "metadata server address")
	site := fs.Int("site", 0, "site ID to scrub (0 = every active site)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	meta, closeMeta, err := dialMeta(*metaAddr)
	if err != nil {
		return err
	}
	defer closeMeta()
	var targets []model.SiteID
	if *site > 0 {
		targets = []model.SiteID{model.SiteID(*site)}
	} else {
		infos := meta.SiteInfos()
		for _, id := range meta.Sites() {
			if infos[id].State == model.SiteActive {
				targets = append(targets, id)
			}
		}
	}
	for _, id := range targets {
		if err := meta.PutTask(&model.TaskRecord{
			ID:       fmt.Sprintf("scrub-site-%d", id),
			Type:     model.TaskTypeScrubSite,
			Site:     id,
			Priority: model.PriorityScrub,
			State:    model.TaskPending,
		}); err != nil {
			return fmt.Errorf("enqueue scrub of site %d: %w", id, err)
		}
	}
	fmt.Printf("scrub enqueued for %d site(s)\n", len(targets))
	return nil
}

// runTasks prints the durable task table.
func runTasks(args []string) error {
	fs := flag.NewFlagSet("ecstore-control tasks", flag.ContinueOnError)
	metaAddr := fs.String("meta", "127.0.0.1:7100", "metadata server address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	meta, closeMeta, err := dialMeta(*metaAddr)
	if err != nil {
		return err
	}
	defer closeMeta()
	recs := meta.ListTasks()
	if len(recs) == 0 {
		fmt.Println("no tasks")
		return nil
	}
	fmt.Printf("%-28s %-14s %-9s %-5s %-8s %s\n", "ID", "TYPE", "STATE", "SITE", "ATTEMPTS", "LAST ERROR")
	for _, t := range recs {
		fmt.Printf("%-28s %-14s %-9s %-5d %-8d %s\n",
			t.ID, t.Type, t.State, t.Site, t.Attempts, t.LastError)
	}
	return nil
}

func runDaemon(args []string) error {
	fs := flag.NewFlagSet("ecstore-control", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7105", "statistics service listen address")
	metaAddr := fs.String("meta", "127.0.0.1:7100", "metadata server address")
	sitesCSV := fs.String("sites", "", "comma-separated storage site addresses (site 1 first)")
	enableMover := fs.Bool("mover", false, "run the chunk mover")
	enableRepair := fs.Bool("repair", false, "run the repair service")
	enableScrub := fs.Bool("scrub", false, "run the periodic checksum scrubber")
	moverInterval := fs.Duration("mover-interval", time.Second, "pause between movement attempts")
	statsInterval := fs.Duration("stats-interval", 5*time.Second, "load report collection period")
	repairGrace := fs.Duration("repair-grace", 15*time.Minute, "grace before reconstructing a failed site")
	scrubInterval := fs.Duration("scrub-interval", time.Hour, "pause between scrub sweeps")
	taskBytesPerSec := fs.Int64("task-bytes-per-sec", 0, "background task I/O budget in bytes/sec (0 = unthrottled)")
	metricsAddr := fs.String("metrics-addr", "", "HTTP address for /metrics (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sitesCSV == "" {
		return errors.New("-sites is required")
	}

	reg := obs.NewRegistry()
	tcp := &transport.TCP{Metrics: transport.NewMetrics(reg)}

	// Metadata client.
	conn, err := tcp.Dial(*metaAddr)
	if err != nil {
		return fmt.Errorf("connect metadata: %w", err)
	}
	metaRPC := rpc.NewClient(conn)
	defer func() { _ = metaRPC.Close() }()
	meta := metadata.NewClient(metaRPC)

	// Storage site clients.
	sites := make(map[model.SiteID]storage.SiteAPI)
	var rpcClients []*rpc.Client
	defer func() {
		for _, c := range rpcClients {
			_ = c.Close()
		}
	}()
	for i, siteAddr := range strings.Split(*sitesCSV, ",") {
		conn, err := tcp.Dial(strings.TrimSpace(siteAddr))
		if err != nil {
			return fmt.Errorf("connect site %d (%s): %w", i+1, siteAddr, err)
		}
		rc := rpc.NewClient(conn)
		rpcClients = append(rpcClients, rc)
		sites[model.SiteID(i+1)] = storage.NewRPCClient(rc)
	}

	// Statistics service: local aggregator + RPC server for clients.
	agg := stats.NewAggregator(0)
	agg.EnableMetrics(reg)
	l, err := tcp.Listen(*addr)
	if err != nil {
		return err
	}
	statsSrv := rpc.NewServer(stats.NewServer(agg))
	statsSrv.SetMetrics(rpc.NewMetrics(reg, "rpc_server"))
	//lint:ignore goleak accept loop; unblocked by the deferred statsSrv.Close on every return path
	go func() { _ = statsSrv.Serve(l) }()
	defer func() { _ = statsSrv.Close() }()

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", ml.Addr())
		//lint:ignore goleak metrics endpoint serves for the process lifetime by design
		go func() { _ = obs.Serve(ml, reg, nil) }()
	}

	// The unified background scheduler: the metadata server's task table
	// is its durable queue, so tasks enqueued by the subcommands above
	// (or left over from a previous daemon run) are picked up here.
	sched := tasks.New(tasks.Config{
		Store:       meta,
		BytesPerSec: *taskBytesPerSec,
		Metrics:     reg,
	})

	var mover *core.MoverRunner
	if *enableMover {
		mover = core.NewMoverRunner(core.MoverRunnerConfig{
			Interval: *moverInterval,
			SiteInfo: meta.SiteInfos,
			Metrics:  reg,
		}, meta, sites, agg.CoAccess, agg.Loads, agg.Probes)
	}
	var repairSvc *repair.Service
	if *enableRepair {
		repairSvc = repair.NewService(repair.Config{
			Grace:    *repairGrace,
			SiteInfo: meta.SiteInfos,
			Throttle: sched.Throttle,
			Metrics:  reg,
		}, meta, sites, agg.Loads)
	}
	scrubber := core.NewScrubber(meta, sites, sched.Enqueue, reg)
	drainer := core.NewDrainer(meta, sites, agg.Loads, nil, reg)
	scrubEvery := time.Duration(0)
	if *enableScrub {
		scrubEvery = *scrubInterval
	}
	core.BuildTaskPlane(sched, core.TaskPlaneOptions{
		Repair:        repairSvc,
		Mover:         mover,
		MoverInterval: *moverInterval,
		Scrub:         scrubber,
		ScrubInterval: scrubEvery,
		Meta:          meta,
		Drain:         drainer,
		Stats: func(ctx context.Context) {
			for id, api := range sites {
				pctx, pcancel := context.WithTimeout(ctx, 2*time.Second)
				start := time.Now()
				if err := api.Probe(pctx); err != nil {
					pcancel()
					continue
				}
				agg.ObserveProbe(id, time.Since(start).Seconds())
				if load, err := api.LoadReport(pctx); err == nil {
					agg.ReportLoad(id, load)
				}
				pcancel()
			}
		},
		StatsInterval: *statsInterval,
	})
	sched.Start()
	defer sched.Stop()

	fmt.Printf("ecstore-control: stats on %s, %d sites, mover=%v repair=%v scrub=%v\n",
		l.Addr(), len(sites), *enableMover, *enableRepair, *enableScrub)

	// Run until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if mover != nil {
		moved, failed := mover.Moves()
		fmt.Printf("mover: %d moved, %d failed\n", moved, failed)
	}
	if repairSvc != nil {
		fmt.Printf("repair: %d chunks reconstructed\n", repairSvc.Repaired())
	}
	return nil
}
