// Command ecstore-control runs EC-Store's control plane for a distributed
// deployment: the statistics service (served over RPC for clients to
// report accesses), periodic load collection and o_j probing of every
// storage site, the chunk mover, and the repair service.
//
//	ecstore-control -addr 127.0.0.1:7105 \
//	  -meta 127.0.0.1:7100 \
//	  -sites 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103,127.0.0.1:7104 \
//	  -mover -repair
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ecstore/internal/core"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/repair"
	"ecstore/internal/rpc"
	"ecstore/internal/stats"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ecstore-control", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7105", "statistics service listen address")
	metaAddr := fs.String("meta", "127.0.0.1:7100", "metadata server address")
	sitesCSV := fs.String("sites", "", "comma-separated storage site addresses (site 1 first)")
	enableMover := fs.Bool("mover", false, "run the chunk mover")
	enableRepair := fs.Bool("repair", false, "run the repair service")
	moverInterval := fs.Duration("mover-interval", time.Second, "pause between movement attempts")
	statsInterval := fs.Duration("stats-interval", 5*time.Second, "load report collection period")
	repairGrace := fs.Duration("repair-grace", 15*time.Minute, "grace before reconstructing a failed site")
	metricsAddr := fs.String("metrics-addr", "", "HTTP address for /metrics (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sitesCSV == "" {
		return errors.New("-sites is required")
	}

	reg := obs.NewRegistry()
	tcp := &transport.TCP{Metrics: transport.NewMetrics(reg)}

	// Metadata client.
	conn, err := tcp.Dial(*metaAddr)
	if err != nil {
		return fmt.Errorf("connect metadata: %w", err)
	}
	metaRPC := rpc.NewClient(conn)
	defer func() { _ = metaRPC.Close() }()
	meta := metadata.NewClient(metaRPC)

	// Storage site clients.
	sites := make(map[model.SiteID]storage.SiteAPI)
	var rpcClients []*rpc.Client
	defer func() {
		for _, c := range rpcClients {
			_ = c.Close()
		}
	}()
	for i, siteAddr := range strings.Split(*sitesCSV, ",") {
		conn, err := tcp.Dial(strings.TrimSpace(siteAddr))
		if err != nil {
			return fmt.Errorf("connect site %d (%s): %w", i+1, siteAddr, err)
		}
		rc := rpc.NewClient(conn)
		rpcClients = append(rpcClients, rc)
		sites[model.SiteID(i+1)] = storage.NewRPCClient(rc)
	}

	// Statistics service: local aggregator + RPC server for clients.
	agg := stats.NewAggregator(0)
	agg.EnableMetrics(reg)
	l, err := tcp.Listen(*addr)
	if err != nil {
		return err
	}
	statsSrv := rpc.NewServer(stats.NewServer(agg))
	statsSrv.SetMetrics(rpc.NewMetrics(reg, "rpc_server"))
	//lint:ignore goleak accept loop; unblocked by the deferred statsSrv.Close on every return path
	go func() { _ = statsSrv.Serve(l) }()
	defer func() { _ = statsSrv.Close() }()

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", ml.Addr())
		//lint:ignore goleak metrics endpoint serves for the process lifetime by design
		go func() { _ = obs.Serve(ml, reg, nil) }()
	}

	// Periodic load collection + probing (the storage services report
	// their windows when polled; Section V-A).
	stop := make(chan struct{})
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		ticker := time.NewTicker(*statsInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				for id, api := range sites {
					pctx, pcancel := context.WithTimeout(context.Background(), 2*time.Second)
					start := time.Now()
					if err := api.Probe(pctx); err != nil {
						pcancel()
						continue
					}
					agg.ObserveProbe(id, time.Since(start).Seconds())
					if load, err := api.LoadReport(pctx); err == nil {
						agg.ReportLoad(id, load)
					}
					pcancel()
				}
			case <-stop:
				return
			}
		}
	}()

	// Mover and repair.
	var mover *core.MoverRunner
	if *enableMover {
		mover = core.NewMoverRunner(core.MoverRunnerConfig{
			Interval: *moverInterval,
			Metrics:  reg,
		}, meta, sites, agg.CoAccess, agg.Loads, agg.Probes)
		mover.Start(context.Background())
		defer mover.Stop()
	}
	var repairSvc *repair.Service
	if *enableRepair {
		repairSvc = repair.NewService(repair.Config{Grace: *repairGrace, Metrics: reg}, meta, sites, agg.Loads)
		repairSvc.Start(context.Background())
		defer repairSvc.Stop()
	}

	fmt.Printf("ecstore-control: stats on %s, %d sites, mover=%v repair=%v\n",
		l.Addr(), len(sites), *enableMover, *enableRepair)

	// Run until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stop)
	<-collectorDone
	if mover != nil {
		moved, failed := mover.Moves()
		fmt.Printf("mover: %d moved, %d failed\n", moved, failed)
	}
	if repairSvc != nil {
		fmt.Printf("repair: %d chunks reconstructed\n", repairSvc.Repaired())
	}
	return nil
}
