// ecstore-lint runs the project's static-analysis suite (internal/lint)
// over the module: stdlib-only loading and type-checking plus the
// EC-Store invariant rules (ctxfirst, lockblock, goleak, determinism,
// errwrap, metricname, lockorder, poolbalance).
//
// Usage:
//
//	ecstore-lint [-rules rule,rule] [-json] [./... | dir ...]
//
// With ./... (or no argument) the whole module is linted. Explicit
// directories lint just those packages — that is how the golden tests
// point it at deliberate-violation fixtures. -json emits one diagnostic
// per line as {"file","line","col","rule","msg"} for machine consumers
// (CI turns these into GitHub error annotations). Exit status: 0 clean,
// 1 findings, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ecstore/internal/lint"
)

// jsonDiag is the -json wire form of one diagnostic, one object per line.
type jsonDiag struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ecstore-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule subset (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON, one object per line")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		var err error
		analyzers, err = lint.ByName(analyzers, strings.Split(*rules, ","))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		switch pat {
		case "./...", "...":
			all, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			pkgs = append(pkgs, all...)
		default:
			loaded, err := loader.LoadDirs(strings.TrimPrefix(pat, "./"))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			pkgs = append(pkgs, loaded...)
		}
	}

	diags := lint.Run(loader.Fset, analyzers, pkgs)
	enc := json.NewEncoder(stdout)
	for _, d := range diags {
		if *jsonOut {
			enc.Encode(jsonDiag{
				File: d.Pos.Filename,
				Line: d.Pos.Line,
				Col:  d.Pos.Column,
				Rule: d.Rule,
				Msg:  d.Message,
			})
			continue
		}
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "ecstore-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
