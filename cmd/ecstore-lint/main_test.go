package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the CLI with stdout/stderr redirected to temp files and
// returns the exit code and captured stdout.
func capture(t *testing.T, args ...string) (int, string) {
	t.Helper()
	dir := t.TempDir()
	stdout, err := os.Create(filepath.Join(dir, "stdout"))
	if err != nil {
		t.Fatal(err)
	}
	stderr, err := os.Create(filepath.Join(dir, "stderr"))
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, stdout, stderr)
	stdout.Close()
	stderr.Close()
	out, err := os.ReadFile(filepath.Join(dir, "stdout"))
	if err != nil {
		t.Fatal(err)
	}
	return code, string(out)
}

func TestListExitsZero(t *testing.T) {
	code, out := capture(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, rule := range []string{"lockorder", "poolbalance", "lockblock", "goleak"} {
		if !strings.Contains(out, rule) {
			t.Errorf("-list output missing rule %q", rule)
		}
	}
}

// TestJSONOutput pins the -json wire format: one object per line with
// the file/line/col/rule/msg fields CI turns into error annotations.
func TestJSONOutput(t *testing.T) {
	code, out := capture(t, "-json", "-rules", "poolbalance",
		"internal/lint/testdata/src/poolbalance/poolbalance")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (fixture has deliberate findings)", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) == 0 {
		t.Fatal("no diagnostics emitted")
	}
	for _, line := range lines {
		var d jsonDiag
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Msg == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if d.Rule != "poolbalance" {
			t.Errorf("rule %q, want poolbalance", d.Rule)
		}
	}
}

func TestUnknownRuleExitsTwo(t *testing.T) {
	code, _ := capture(t, "-rules", "nosuchrule")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
