package ecstore_test

import (
	"fmt"

	"ecstore"
)

// ExampleOpen stores a block on an in-process cluster and reads it back.
func ExampleOpen() {
	cluster, err := ecstore.Open(ecstore.Config{NumSites: 8})
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	defer cluster.Close()

	if err := cluster.Put("hello", []byte("erasure-coded world")); err != nil {
		fmt.Println("put:", err)
		return
	}
	data, err := cluster.Get("hello")
	if err != nil {
		fmt.Println("get:", err)
		return
	}
	fmt.Println(string(data))
	fmt.Printf("storage overhead: %.1fx\n", cluster.Stats().StorageOverhead)
	// Output:
	// erasure-coded world
	// storage overhead: 2.0x
}

// ExampleCluster_GetMulti shows a planned multi-block read with its
// response-time breakdown.
func ExampleCluster_GetMulti() {
	cluster, err := ecstore.Open(ecstore.Config{NumSites: 8})
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	defer cluster.Close()

	for _, id := range []ecstore.BlockID{"a", "b", "c"} {
		if err := cluster.Put(id, []byte("block "+string(id))); err != nil {
			fmt.Println("put:", err)
			return
		}
	}
	blocks, bd, err := cluster.GetMulti([]ecstore.BlockID{"a", "b", "c"})
	if err != nil {
		fmt.Println("get:", err)
		return
	}
	fmt.Println(len(blocks), "blocks in one request")
	fmt.Println(bd.Total() > 0)
	// Output:
	// 3 blocks in one request
	// true
}
