package ecstore

import (
	"bytes"
	"fmt"
	"testing"
)

func open(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestOpenDefaults(t *testing.T) {
	c := open(t, Config{})
	data := []byte("hello ec-store")
	if err := c.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	st := c.Stats()
	if st.StorageOverhead != 2.0 {
		t.Fatalf("default overhead = %v, want 2.0 (RS(2,2))", st.StorageOverhead)
	}
	if st.StoredBytes != 2*int64(len(data)) {
		t.Fatalf("stored bytes = %d", st.StoredBytes)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{Scheme: Scheme(42)}); err == nil {
		t.Fatal("bad scheme accepted")
	}
	if _, err := Open(Config{Strategy: AccessStrategy(42)}); err == nil {
		t.Fatal("bad strategy accepted")
	}
	if _, err := Open(Config{NumSites: 1}); err == nil {
		t.Fatal("1-site cluster accepted")
	}
}

func TestReplicatedScheme(t *testing.T) {
	c := open(t, Config{Scheme: Replicated, Strategy: RandomAccess})
	if err := c.Put("b", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().StorageOverhead; got != 3.0 {
		t.Fatalf("replication overhead = %v", got)
	}
	locs, err := c.ChunkLocations("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 3 {
		t.Fatalf("replica count = %d", len(locs))
	}
}

func TestGetMultiBreakdown(t *testing.T) {
	c := open(t, Config{})
	ids := make([]BlockID, 4)
	for i := range ids {
		ids[i] = BlockID(fmt.Sprintf("m%d", i))
		if err := c.Put(ids[i], []byte{byte(i), 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	blocks, bd, err := c.GetMulti(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	if bd.Total() <= 0 {
		t.Fatalf("breakdown = %+v", bd)
	}
}

func TestFailRecoverAndDegradedRead(t *testing.T) {
	c := open(t, Config{NumSites: 8})
	payload := bytes.Repeat([]byte{7}, 4096)
	if err := c.Put("blk", payload); err != nil {
		t.Fatal(err)
	}
	locs, err := c.ChunkLocations("blk")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FailSite(locs[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.FailSite(locs[3]); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("degraded read mismatch")
	}
	if err := c.RecoverSite(locs[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.FailSite(99); err == nil {
		t.Fatal("unknown site accepted")
	}
	if err := c.RecoverSite(99); err == nil {
		t.Fatal("unknown site accepted")
	}
}

func TestMoverTick(t *testing.T) {
	c := open(t, Config{NumSites: 10, EnableMover: true, Seed: 3})
	for i := 0; i < 4; i++ {
		if err := c.Put(BlockID(fmt.Sprintf("b%d", i)), bytes.Repeat([]byte{byte(i)}, 512)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, _, err := c.GetMulti([]BlockID{"b0", "b1"}); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			c.Tick()
		}
	}
	// Data intact regardless of movement.
	got, err := c.Get("b0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0}, 512)) {
		t.Fatal("data corrupted")
	}
	_ = c.Stats().ChunksMoved // may be zero; must not panic
}

func TestLateBinding(t *testing.T) {
	c := open(t, Config{LateBindingDelta: 1})
	if err := c.Put("lb", []byte("late binding payload")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("lb")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "late binding payload" {
		t.Fatal("LB read mismatch")
	}
}

func TestBackgroundMode(t *testing.T) {
	c := open(t, Config{Background: true, EnableMover: true, EnableRepair: true})
	if err := c.Put("bg", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("bg"); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteViaFacade(t *testing.T) {
	c := open(t, Config{})
	if err := c.Put("d", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("d"); err == nil {
		t.Fatal("read after delete succeeded")
	}
	if _, err := c.ChunkLocations("d"); err == nil {
		t.Fatal("locations after delete succeeded")
	}
}

func TestFacadeMetricsAndTraces(t *testing.T) {
	reg := NewRegistry()
	c, err := Open(Config{NumSites: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Metrics() != reg {
		t.Fatal("Metrics() did not return the configured registry")
	}
	if err := c.Put("m1", []byte("facade metrics payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("m1"); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if n := snap.CounterValue("client_requests_total", ""); n != 1 {
		t.Fatalf("client_requests_total = %d, want 1", n)
	}
	if n := snap.SumCounters("storage_writes_total"); n == 0 {
		t.Fatal("no storage writes recorded")
	}
	traces := c.Traces(1)
	if len(traces) != 1 || traces[0].Name != "get" {
		t.Fatalf("Traces(1) = %v, want one get trace", traces)
	}

	// Uninstrumented clusters report nil without tripping anything.
	plain, err := Open(Config{NumSites: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.Metrics() != nil || plain.Traces(1) != nil {
		t.Fatal("uninstrumented cluster leaked metrics or traces")
	}
}
