// Package ecstore is a Go implementation of EC-Store (Abebe, Daudjee,
// Glasbergen, Tian — ICDCS 2018): a distributed erasure-coded block store
// with dynamic, workload-aware data access and data movement.
//
// A Cluster stores blocks as RS(k, r) erasure-coded chunks (or replicated
// copies, for comparison) across storage sites. Reads are planned by a
// cost model that selects which chunks to fetch from which sites to
// minimize expected retrieval time (the paper's Equations 1-4), with an
// access-plan cache, a greedy fallback, and optional late binding. A
// background chunk mover co-locates co-accessed blocks and balances load
// (Equations 5-8, Algorithm 1), and a repair service reconstructs chunks
// lost to site failures.
//
// Quick start:
//
//	cluster, err := ecstore.Open(ecstore.Config{NumSites: 8})
//	if err != nil { ... }
//	defer cluster.Close()
//
//	n, err := cluster.PutReader("photo-123", file)      // streamed, bounded memory
//	head, err := cluster.GetRange("photo-123", 0, 4096) // only the touched stripes
//	blocks, breakdown, err := cluster.GetMulti([]ecstore.BlockID{"photo-123", "photo-124"})
//
// The packages under internal/ contain the full system: the Reed-Solomon
// codec, the ILP solver, the cost-model planner and mover, the metadata,
// statistics, storage and repair services, RPC bindings for multi-process
// deployments, the deterministic cluster simulator, and the benchmark
// harness that regenerates the paper's figures and tables (see DESIGN.md
// and EXPERIMENTS.md).
package ecstore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"ecstore/internal/core"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/placement"
)

// BlockID identifies a stored block.
type BlockID = model.BlockID

// Breakdown is the per-request response-time decomposition (seconds):
// metadata access, access planning, chunk retrieval, decoding.
type Breakdown = model.Breakdown

// SiteID identifies a storage site.
type SiteID = model.SiteID

// Registry collects a cluster's metrics (counters, gauges, latency
// histograms). Create one with NewRegistry and pass it in Config.Metrics.
type Registry = obs.Registry

// Trace is one finished request's span tree.
type Trace = obs.Trace

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Scheme selects the fault-tolerance mechanism.
type Scheme int

// Fault-tolerance schemes.
const (
	// Erasure stores k data + r parity chunks per block (RS(k, r)).
	Erasure Scheme = iota + 1
	// Replicated stores r+1 full copies per block (the paper's R
	// baseline).
	Replicated
)

// AccessStrategy selects how reads are planned.
type AccessStrategy int

// Access strategies.
const (
	// CostModel plans reads by minimizing the paper's cost function
	// (the EC+C configurations).
	CostModel AccessStrategy = iota + 1
	// RandomAccess picks random chunks (the R and EC baselines).
	RandomAccess
)

// Config assembles a cluster.
type Config struct {
	// NumSites is the number of storage sites (default 8; the paper's
	// testbed uses 32).
	NumSites int
	// Scheme picks erasure coding (default) or replication.
	Scheme Scheme
	// K and R are the coding parameters; defaults RS(2, 2), tolerating
	// two site failures with 2x storage (vs 3x for replication).
	K int
	R int
	// Strategy picks the read planner (default CostModel).
	Strategy AccessStrategy
	// LateBindingDelta, when positive, fetches k+delta chunks per block
	// and uses the first k (Section IV-B1).
	LateBindingDelta int
	// EnableMover runs the background chunk mover.
	EnableMover bool
	// MoverInterval throttles movement (default 1s, <1 chunk/s as in
	// the paper).
	MoverInterval time.Duration
	// EnableRepair runs the failure detector + chunk reconstruction.
	EnableRepair bool
	// RepairGrace is how long a site must stay down before repair
	// (default 15 minutes, following GFS and the paper).
	RepairGrace time.Duration
	// EnableScrub runs the periodic checksum scrubber, which verifies
	// every chunk at rest and enqueues repair for corrupt or missing
	// ones (requires EnableRepair to actually re-protect).
	EnableScrub bool
	// ScrubInterval is the scrub sweep cadence (default 1 minute).
	ScrubInterval time.Duration
	// Background starts the control loops (stats collection, mover,
	// repair) on Open. When false, call Tick to drive them manually —
	// useful for tests and deterministic examples.
	Background bool
	// Seed drives all randomized choices.
	Seed int64
	// Metrics, when non-nil, instruments every service in the cluster
	// and enables per-request tracing; snapshot it with its Snapshot
	// method or via Cluster.Metrics. Nil disables instrumentation at
	// zero cost (see OBSERVABILITY.md).
	Metrics *Registry
}

// Cluster is a single-process EC-Store deployment: in-memory storage
// services, a metadata catalog, statistics, planner, mover and repair,
// all wired together. For multi-process deployments, use the cmd/
// binaries, which expose the same services over RPC.
type Cluster struct {
	inner *core.Cluster
}

// Stats summarizes a cluster's dynamic behaviour.
type Stats struct {
	// PlanCacheHitRate is the access-plan cache hit rate (the paper
	// reports ~90% under YCSB).
	PlanCacheHitRate float64
	// ChunksMoved counts successful background chunk movements.
	ChunksMoved int64
	// ChunksRepaired counts chunks reconstructed after failures.
	ChunksRepaired int64
	// StoredBytes is the total bytes on all sites.
	StoredBytes int64
	// StorageOverhead is the scheme's expansion factor (2.0 for
	// RS(2,2), 3.0 for 3-way replication).
	StorageOverhead float64
}

// Open builds and (optionally) starts a cluster.
func Open(cfg Config) (*Cluster, error) {
	if cfg.NumSites == 0 {
		cfg.NumSites = 8
	}
	coreCfg := core.ClusterConfig{
		NumSites:      cfg.NumSites,
		EnableMover:   cfg.EnableMover,
		MoverInterval: cfg.MoverInterval,
		EnableRepair:  cfg.EnableRepair,
		RepairGrace:   cfg.RepairGrace,
		EnableScrub:   cfg.EnableScrub,
		ScrubInterval: cfg.ScrubInterval,
		Metrics:       cfg.Metrics,
	}
	coreCfg.Client = core.Config{
		K:           cfg.K,
		R:           cfg.R,
		Delta:       cfg.LateBindingDelta,
		Seed:        cfg.Seed,
		InlineExact: true,
	}
	switch cfg.Scheme {
	case 0, Erasure:
		coreCfg.Client.Scheme = model.SchemeErasure
	case Replicated:
		coreCfg.Client.Scheme = model.SchemeReplicated
	default:
		return nil, fmt.Errorf("ecstore: unknown scheme %d", cfg.Scheme)
	}
	switch cfg.Strategy {
	case 0, CostModel:
		coreCfg.Client.Strategy = placement.StrategyCost
	case RandomAccess:
		coreCfg.Client.Strategy = placement.StrategyRandom
	default:
		return nil, fmt.Errorf("ecstore: unknown access strategy %d", cfg.Strategy)
	}

	inner, err := core.NewCluster(coreCfg)
	if err != nil {
		return nil, err
	}
	if cfg.Background {
		//lint:ignore ctxfirst context-free public facade: background loops live until Close; core.Cluster.Start offers the ctx-aware entry
		inner.Start(context.Background())
	}
	return &Cluster{inner: inner}, nil
}

// Close stops background loops and releases resources.
func (c *Cluster) Close() { c.inner.Close() }

// Put stores a block under id, encoding and placing its chunks.
func (c *Cluster) Put(id BlockID, data []byte) error {
	return c.inner.Client.Put(id, data)
}

// PutReader streams a block from r without buffering it whole: stripe
// N encodes while stripe N-1's chunk writes are still in flight, so
// memory stays bounded regardless of block size. The block is laid out
// stripe-interleaved, which makes GetRange stripe-local (DESIGN.md
// §13). Returns the number of payload bytes stored.
//
//lint:ignore ctxfirst context-free public facade; core.Client.PutReader offers the ctx-aware entry
func (c *Cluster) PutReader(id BlockID, r io.Reader) (int64, error) {
	return c.inner.Client.PutReader(context.Background(), id, r)
}

// Get retrieves one block.
func (c *Cluster) Get(id BlockID) ([]byte, error) {
	return c.inner.Client.Get(id)
}

// GetRange reads n bytes at byte offset off without assembling the
// whole block: only the stripes the range touches are fetched and
// decoded (DESIGN.md §13).
//
//lint:ignore ctxfirst context-free public facade; core.Client.GetRange offers the ctx-aware entry
func (c *Cluster) GetRange(id BlockID, off, n int64) ([]byte, error) {
	return c.inner.Client.GetRange(context.Background(), id, off, n)
}

// GetMulti retrieves several blocks in one planned request and reports
// the response-time breakdown.
func (c *Cluster) GetMulti(ids []BlockID) (map[BlockID][]byte, Breakdown, error) {
	return c.inner.Client.GetMulti(ids)
}

// Delete removes a block and its chunks.
func (c *Cluster) Delete(id BlockID) error {
	return c.inner.Client.Delete(id)
}

// Tick drives one synchronous control-plane round (stats collection, one
// movement attempt, one repair check). Use when Background is false.
//
//lint:ignore ctxfirst context-free public facade; core.Cluster.Tick offers the ctx-aware entry
func (c *Cluster) Tick() { c.inner.Tick(context.Background()) }

// FailSite injects a failure at a site (1-based ids up to NumSites).
func (c *Cluster) FailSite(id SiteID) error {
	if _, ok := c.inner.Services[id]; !ok {
		return errors.New("ecstore: unknown site")
	}
	c.inner.FailSite(id)
	return nil
}

// RecoverSite heals a previously failed site.
func (c *Cluster) RecoverSite(id SiteID) error {
	if _, ok := c.inner.Services[id]; !ok {
		return errors.New("ecstore: unknown site")
	}
	c.inner.RecoverSite(id)
	return nil
}

// Stats returns a snapshot of the cluster's dynamic behaviour.
func (c *Cluster) Stats() Stats {
	s := Stats{
		PlanCacheHitRate: c.inner.Client.PlannerStats().HitRate(),
		StoredBytes:      c.inner.TotalStoredBytes(),
		StorageOverhead:  c.inner.Client.StorageOverhead(),
	}
	if c.inner.Mover != nil {
		moved, _ := c.inner.Mover.Moves()
		s.ChunksMoved = moved
	}
	if c.inner.Repair != nil {
		s.ChunksRepaired = c.inner.Repair.Repaired()
	}
	return s
}

// Metrics returns the registry passed in Config.Metrics, or nil when the
// cluster runs uninstrumented. See OBSERVABILITY.md for the metric
// families it carries.
func (c *Cluster) Metrics() *Registry { return c.inner.Metrics }

// Traces returns the n most recent finished request traces, newest
// first. It returns nil unless Config.Metrics was set (tracing rides on
// the metrics registry).
func (c *Cluster) Traces(n int) []*Trace {
	if c.inner.Tracer == nil {
		return nil
	}
	return c.inner.Tracer.Recent(n)
}

// ChunkLocations reports which sites hold each chunk of a block, in chunk
// order (diagnostic; placements change as the mover runs).
func (c *Cluster) ChunkLocations(id BlockID) ([]SiteID, error) {
	metas, err := c.inner.Catalog.Lookup([]model.BlockID{id})
	if err != nil {
		return nil, err
	}
	return append([]SiteID(nil), metas[id].Sites...), nil
}
